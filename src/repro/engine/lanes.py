"""Lane-packed injection simulation: the temporal axis of bit-parallelism.

The packed-pattern trick that makes PPSFP cheap — one Python int carries
one net across *n* patterns — applies just as well across *injections*:
a chunk of up to ``DEFAULT_LANE_WIDTH`` injection points is simulated in
**one** sequential run where bit-lane *i* carries fault instance *i*.
All lanes share the stimulus (replicated bits), start from the golden
state, and diverge only when their own fault is injected, which for the
sequential fault models in this toolkit is a per-lane XOR of the flop
state (:meth:`repro.sim.sequential.SequentialSim.flip_state` with a
``pattern_mask``).  Outcomes come back per lane by XOR against the
replicated golden trace:

* **failure** — the lane's primary-output bits differ from golden in
  some cycle;
* **latent**  — outputs match but the lane's final state differs;
* **masked**  — neither.

The cost of a packed run is one circuit evaluation per cycle regardless
of lane count (Python bigint bitwise ops are width-insensitive at these
sizes), so a ``W``-lane run replaces ``W`` sequential resimulations.

Widths beyond 64 engage the **vector tier**: the packed word outgrows
the machine word and is carried by an arbitrary-precision int (big-int
ops stay near width-insensitive to very large widths), by a numpy
``uint64`` block array per net fed through the same compiled step
function, or — the default from ~1k lanes on circuits with wide
levels — by the structure-of-arrays kernel tier
(:class:`repro.sim.compiled.SoaStepProgram`), which holds the whole
net state in one 2-D block matrix and runs each topological level as a
handful of fused numpy calls.  The backing auto-picks per
:func:`repro.sim.vector.resolve_backing` (force with ``backing=`` /
``RESCUE_VECTOR_BACKING``).  Per-lane flips become index-computed XOR
masks into the packed word (for the SoA backing, one fancy-indexed XOR
into the state rows *and their complement mirror* — ``~x ^ b ==
~(x ^ b)``, so one write keeps the mirror invariant) and outcome
recovery is a vectorized XOR against the golden trace; all backings
are byte-identical to the 64-lane and 1-lane references.  Without
numpy installed, widths above 64 degrade to 64 with a one-time logged
warning (:func:`resolve_lane_width`).

Two front-ends are provided: :func:`seu_outcomes` (flip one flop at one
cycle — :class:`repro.engine.backends.SeuBackend`) and
:func:`transient_outcomes` (arbitrary injection-cycle physics supplied
by the backend, e.g. a transient stuck-at; the lane carries the
resulting *state perturbation* — :class:`repro.engine.workloads
.SlicingBackend`).  Both are provably lane-exact: each lane computes the
same boolean function of the same inputs as the per-point simulation,
so outcome multisets are byte-identical at every lane width.
"""

from __future__ import annotations

import logging
import os
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from ..circuit.netlist import Circuit
from ..sim import compiled as _compiled
from ..sim import vector as _vector
from ..sim.logic import mask_of, simulate
from ..sim.sequential import SequentialSim
from .core import _chunked

log = logging.getLogger("repro.engine")

#: Default number of fault instances packed into one sequential run.
DEFAULT_LANE_WIDTH = 64


def resolve_lane_width(width: int) -> int:
    """Clamp a requested lane width to what the host supports.

    Widths above 64 belong to the vector tier, which is declared
    against numpy; without it they degrade to the classic 64-lane
    packing with a one-time logged warning.  (Outcomes are identical at
    every width, so degradation only costs throughput.)
    """
    width = max(1, int(width))
    if width > DEFAULT_LANE_WIDTH and not _vector.HAVE_NUMPY:
        _vector._warn_no_numpy(f"lane width {width} requested")
        return DEFAULT_LANE_WIDTH
    return width


def aligned_batch_size(lane_width: int, batch_size: int,
                       default_batch_size: int = DEFAULT_LANE_WIDTH) -> int:
    """The engine's effective chunk size for a lane-packing backend.

    Chunks are aligned *down* to a lane multiple so no chunk ships a
    ragged final lane group, and a still-default batch size is inflated
    to fill one vector-tier lane word (a 64-point chunk on a 256-lane
    backend would waste three quarters of every packed run).  The result
    is a pure function of ``(lane_width, configured batch size)`` — the
    chunk partition, and with it every checkpoint's chunk index, is
    recomputed identically when a campaign resumes.
    """
    size = max(1, batch_size)
    if lane_width > 1 and size > lane_width:
        size -= size % lane_width
    elif lane_width > 64 and size < lane_width \
            and batch_size == default_batch_size:
        size = lane_width
    return size

MASKED = "masked"
LATENT = "latent"
FAILURE = "failure"


def lane_groups(items: Sequence[Any], width: int) -> list[Sequence[Any]]:
    """Split ``items`` into consecutive groups of at most ``width`` —
    the engine's chunking rule, clamped to a sane width."""
    return _chunked(items, max(1, width))


def packed_dispatch(
    points: Sequence[Any],
    width: int,
    cycle_of: Callable[[Any], int],
    outcomes_fn: Callable[[list[Any]], list[str]],
) -> list[str]:
    """Group ``points`` into lanes and classify them, in point order.

    Points are visited by ascending injection cycle so each packed run
    starts at its group's earliest cycle (lanes are golden before their
    flip, so nothing earlier needs simulating), but the returned
    outcome list follows the original point order — what ``run_batch``
    must preserve for executor-identity.
    """
    order = sorted(range(len(points)), key=lambda i: cycle_of(points[i]))
    outcomes: list[str | None] = [None] * len(points)
    for group in lane_groups(order, width):
        got = outcomes_fn([points[i] for i in group])
        for i, outcome in zip(group, got):
            outcomes[i] = outcome
    return outcomes  # type: ignore[return-value]


@dataclass
class LaneContext:
    """Replicated golden-run data shared by every packed run.

    Built once per backend ``prepare()`` and never pickled (workers
    rebuild it): the stimulus and the golden PO trace replicated across
    ``width`` lanes, plus the 1-bit golden state *entering* each cycle
    (what a packed run starting mid-workload is seeded from) and the
    1-bit golden final state (the latent check reference).
    """

    circuit: Circuit
    width: int
    mask: int
    rep_stimuli: list[dict[str, int]]
    rep_trace: list[dict[str, int]]
    states: list[dict[str, int]]
    final_state: dict[str, int]
    #: ``"int"`` (packed big int — any width), ``"ndarray"`` (numpy
    #: uint64 blocks per net through the same compiled step function)
    #: or ``"soa"`` (the level-batched structure-of-arrays kernel).
    backing: str = "int"
    n_blocks: int = 1

    @property
    def n_cycles(self) -> int:
        return len(self.rep_stimuli)

    # Raw views aligned with the circuit's compiled StepProgram slots
    # (stimulus/trace/state tuples instead of dicts), built lazily on
    # the first compiled propagation and dropped if the program cache is
    # invalidated.  They let `propagate` drive the generated step
    # function directly — per-cycle dict packing/unpacking disappears.
    def raw_views(self, program) -> tuple:
        cached = getattr(self, "_raw", None)
        if cached is not None and cached[0] is program:
            return cached[1:]
        stim = [tuple(cyc.get(pi, 0) for pi in program.inputs)
                for cyc in self.rep_stimuli]
        trace = [tuple(cyc[po] for po in program.outputs)
                 for cyc in self.rep_trace]
        mask = self.mask
        states = [tuple(mask if st[q] else 0 for q in program.flop_qs)
                  for st in self.states]
        final = tuple(mask if self.final_state[q] else 0
                      for q in program.flop_qs)
        self._raw = (program, stim, trace, states, final)
        return stim, trace, states, final

    def raw_views_nd(self, program) -> tuple:
        """Block-array raw views for the ndarray backing.

        Every replicated word is either all-zero or all-lanes, so the
        views share two arrays (``zero`` and the lane mask) across all
        nets and cycles — the generated step function never mutates its
        inputs, and `propagate` replaces (not updates) flipped slots.
        """
        cached = getattr(self, "_raw_nd", None)
        if cached is not None and cached[0] is program:
            return cached[1:]
        zero = _vector.zeros(self.n_blocks)
        ones = _vector.mask_array(self.width, self.n_blocks)

        def conv(packed: int):
            return ones if packed else zero

        stim = [tuple(conv(cyc.get(pi, 0)) for pi in program.inputs)
                for cyc in self.rep_stimuli]
        trace = [tuple(conv(cyc[po]) for po in program.outputs)
                 for cyc in self.rep_trace]
        states = [tuple(conv(st[q]) for q in program.flop_qs)
                  for st in self.states]
        final = tuple(conv(self.final_state[q]) for q in program.flop_qs)
        self._raw_nd = (program, stim, trace, states, final, ones)
        return stim, trace, states, final, ones

    def raw_views_soa(self, program) -> tuple:
        """Matrix raw views for the SoA backing.

        The replicated golden data becomes dense uint64 matrices —
        ``stim[cycle]`` is the ``(n_inputs, n_blocks)`` slab assigned
        straight into the state matrix's PI rows, ``trace[cycle]`` the
        PO slab XORed against the gathered outputs, ``states[cycle]`` /
        ``final`` the flop slabs.  Built directly from the 1-bit
        golden data (every replicated word is all-zero or the lane
        mask), no big-int round trips.
        """
        cached = getattr(self, "_raw_soa", None)
        if cached is not None and cached[0] is program:
            return cached[1:]
        np = _vector.np
        ones = _vector.mask_array(self.width, self.n_blocks)
        zero = np.uint64(0)

        def mat(bit_rows):
            bits = np.asarray(bit_rows, dtype=bool)
            return np.where(bits[..., None], ones, zero)

        stim = mat([[bool(cyc.get(pi, 0)) for pi in program.inputs]
                    for cyc in self.rep_stimuli])
        trace = mat([[bool(cyc[po]) for po in program.outputs]
                     for cyc in self.rep_trace])
        states = mat([[bool(st[q]) for q in program.flop_qs]
                      for st in self.states])
        final = mat([bool(self.final_state[q]) for q in program.flop_qs])
        self._raw_soa = (program, stim, trace, states, final, ones)
        return stim, trace, states, final, ones


def build_context(
    circuit: Circuit,
    stimuli: Sequence[Mapping[str, int]],
    width: int,
    golden: tuple[list[dict[str, int]], list[dict[str, int]]] | None = None,
    backing: str | None = None,
) -> LaneContext:
    """Run (or reuse) the golden pass and replicate it across lanes.

    ``golden`` may hand in an existing ``(states, values)`` pair in the
    :func:`repro.safety.slicing._golden_states` format — per-cycle
    entering states plus full net values — to avoid a second golden
    simulation when the backend already keeps one.

    ``backing`` selects the packed-word representation for widths
    beyond 64 (``None`` auto-picks per :func:`repro.sim.vector
    .resolve_backing`, fed the step program's mean gates-per-level so
    narrow circuits — where the SoA kernel cannot amortize per-level
    dispatch — stay on packed ints); the ndarray and SoA backings
    additionally need compiled programs, so they fall back to packed
    ints when compilation is globally disabled (identical outcomes
    either way).
    """
    mask = mask_of(width)
    resolved_backing = _vector.resolve_backing(
        width, backing, level_width=_level_width_hint(circuit, width,
                                                      backing))
    if resolved_backing in ("ndarray", "soa") \
            and not _compiled.compilation_enabled():
        resolved_backing = "int"  # interpreter path carries big ints
    if resolved_backing == "soa":
        program = _compiled.soa_step_program(circuit, width)
        if program is None:  # pragma: no cover - numpy checked above
            resolved_backing = "int"
        else:
            st = program.stats
            log.debug(
                "lane backing=soa width=%d: %d gates / %d levels "
                "(%.1f gates/level), %d fused ops/cycle, %d B scratch",
                width, st.gates, st.levels,
                st.gates / max(1, st.levels), st.fused_ops,
                st.scratch_bytes)
    if golden is not None:
        states = [dict(st) for st in golden[0]]
        values = golden[1]
        trace = [{po: vals.get(po, 0) & 1 for po in circuit.outputs}
                 for vals in values]
        final_state = ({q: values[-1][f.d] & 1
                        for q, f in circuit.flops.items()} if values else
                       dict(states[0]) if states else
                       {q: (1 if f.init else 0)
                        for q, f in circuit.flops.items()})
    else:
        state = {q: (1 if f.init else 0) for q, f in circuit.flops.items()}
        states, trace = [], []
        for stim in stimuli:
            vals = simulate(circuit, stim, 1, state)
            states.append(state)
            trace.append({po: vals.get(po, 0) & 1 for po in circuit.outputs})
            state = {q: vals[f.d] & 1 for q, f in circuit.flops.items()}
        final_state = state
    rep_stimuli = [
        {pi: (mask if (stim.get(pi, 0) & 1) else 0) for pi in circuit.inputs}
        for stim in stimuli
    ]
    rep_trace = [{po: (mask if bit else 0) for po, bit in cyc.items()}
                 for cyc in trace]
    return LaneContext(circuit, width, mask, rep_stimuli, rep_trace,
                       states, final_state, backing=resolved_backing,
                       n_blocks=_vector.blocks_for(width))


def _level_width_hint(circuit: Circuit, width: int,
                      backing: str | None) -> float | None:
    """Mean gates-per-level of the step kernel, when it could steer the
    auto backing choice.

    Computed only when auto-selection is actually in play (no explicit
    or env-forced backing) and the width is in the range where the SoA
    crossover depends on circuit shape — building the schedule is one
    pass over the netlist and is cached on the circuit regardless of
    the choice made.
    """
    if backing is not None or os.environ.get(_vector.ENV_BACKING):
        return None
    if not _vector.HAVE_NUMPY or not _compiled.compilation_enabled():
        return None
    if width < _vector.SOA_MIN_LANES or width >= _vector.NDARRAY_MIN_LANES:
        return None  # the hint cannot change the outcome there
    program = _compiled.soa_step_program(circuit, width)
    if program is None:
        return None
    st = program.stats
    return st.gates / max(1, st.levels)


def propagate(ctx: LaneContext, flips: Mapping[int, Mapping[str, int]],
              start: int, n_lanes: int) -> tuple[int, int]:
    """One packed fault-free propagation with scheduled per-lane flips.

    ``flips[cycle][flop]`` is the lane mask XORed into that flop's state
    *before* the cycle is evaluated (an SEU flip, or the state delta a
    transient injection left behind).  Lanes are golden until their
    first flip, so starting at ``start`` (the earliest flip cycle) from
    the replicated golden entering-state loses nothing.

    Returns ``(fail_mask, latent_mask)``: lanes whose PO bits diverged
    from the golden trace in some cycle, and lanes whose final state
    differs without any PO divergence.
    """
    mask = ctx.mask
    lanes = mask_of(n_lanes)
    if ctx.backing == "soa":
        soa = _compiled.soa_step_program(ctx.circuit, ctx.width)
        if soa is not None:
            return _propagate_soa(ctx, soa, flips, start, lanes)
    program = _compiled.step_program(ctx.circuit)
    if program is not None and ctx.backing == "ndarray":
        return _propagate_ndarray(ctx, program, flips, start, lanes)
    if program is not None:
        # compiled fast path: drive the generated step function on raw
        # slot tuples — flips XOR into state slots by index, outputs
        # compare against the replicated golden trace tuple-to-tuple
        stim, trace, states, final = ctx.raw_views(program)
        q_index = program.q_index
        fn = program.program.fn
        state = states[start]
        fail = 0
        for cyc in range(start, ctx.n_cycles):
            cyc_flips = flips.get(cyc)
            if cyc_flips:
                slots = list(state)
                for q, lane_mask in cyc_flips.items():
                    slots[q_index[q]] ^= lane_mask & mask
                state = tuple(slots)
            out, state = fn(stim[cyc], state, mask)
            for val, golden in zip(out, trace[cyc]):
                fail |= val ^ golden
        diff = 0
        for val, golden in zip(state, final):
            diff |= val ^ golden
        fail &= lanes
        return fail, diff & lanes & ~fail
    sim = SequentialSim(ctx.circuit, ctx.width)
    for q, bit in ctx.states[start].items():
        sim.state[q] = mask if bit else 0
    sim.cycle = start
    fail = 0
    for cyc in range(start, ctx.n_cycles):
        for q, lane_mask in flips.get(cyc, {}).items():
            sim.flip_state(q, lane_mask)
        out = sim.step(ctx.rep_stimuli[cyc])
        golden = ctx.rep_trace[cyc]
        for po, val in out.items():
            fail |= val ^ golden[po]
    diff = 0
    for q, bit in ctx.final_state.items():
        diff |= sim.state[q] ^ (mask if bit else 0)
    fail &= lanes
    return fail, diff & lanes & ~fail


def _propagate_ndarray(ctx: LaneContext, program, flips, start: int,
                       lanes: int) -> tuple[int, int]:
    """The ndarray-backed packed propagation.

    Same loop as the compiled int path, but every slot is a uint64
    block array: the generated step function broadcasts over blocks,
    per-lane flips become block arrays XORed into fresh state slots
    (never in place — golden slots are shared), and fail/latent words
    accumulate elementwise before one conversion back to ints for the
    caller's per-lane bit extraction.
    """
    mask = ctx.mask
    blocks = ctx.n_blocks
    stim, trace, states, final, ones = ctx.raw_views_nd(program)
    q_index = program.q_index
    fn = program.program.fn
    state = states[start]
    fail = _vector.zeros(blocks)
    for cyc in range(start, ctx.n_cycles):
        cyc_flips = flips.get(cyc)
        if cyc_flips:
            slots = list(state)
            for q, lane_mask in cyc_flips.items():
                flip = _vector.to_blocks(lane_mask & mask, blocks)
                slots[q_index[q]] = slots[q_index[q]] ^ flip
            state = tuple(slots)
        out, state = fn(stim[cyc], state, ones)
        for val, golden in zip(out, trace[cyc]):
            fail |= val ^ golden
    diff = _vector.zeros(blocks)
    for val, golden in zip(state, final):
        diff |= val ^ golden
    fail_int = _vector.from_blocks(fail) & lanes
    latent_int = _vector.from_blocks(diff) & lanes & ~fail_int
    return fail_int, latent_int


def _propagate_soa(ctx: LaneContext, program, flips, start: int,
                   lanes: int) -> tuple[int, int]:
    """The SoA-backed packed propagation.

    The whole multi-cycle loop stays inside numpy: stimuli are slab
    assignments into the state matrix's PI rows, the kernel evaluates
    each level as fused array ops, PO divergence and the next state
    come back as row gathers.  Per-lane flips XOR the same words into a
    flop's row *and* its mirror row in one fancy-indexed update
    (``~x ^ b == ~(x ^ b)`` keeps the complement invariant).  The state
    matrix is allocated per call — contexts are shared across thread
    executors — while the flip words, converted from packed ints in one
    bytes pass per cycle, stay local anyway.
    """
    np = _vector.np
    mask = ctx.mask
    blocks = ctx.n_blocks
    stim, trace, states, final, ones = ctx.raw_views_soa(program)
    kernel = program.kernel
    n = kernel.n_slots
    pa, pb = program.pi_slice
    qa, qb = program.q_slice
    q_index = program.q_index
    po_rows = program.po_rows
    d_rows = program.d_rows
    sched = {}
    for cyc, cyc_flips in flips.items():
        packed = b"".join((m & mask).to_bytes(blocks * 8, "little")
                          for m in cyc_flips.values())
        bits = np.frombuffer(packed, dtype="<u8").astype(
            np.uint64).reshape(len(cyc_flips), blocks)
        rows = np.asarray([qa + q_index[q] for q in cyc_flips],
                          dtype=np.intp)
        sched[cyc] = (np.concatenate([rows, rows + n]),
                      np.concatenate([bits, bits]))
    S = np.zeros((2 * n, blocks), dtype=np.uint64)
    S[n] = ones
    S[qa:qb] = states[start]
    np.invert(S[qa:qb], out=S[n + qa:n + qb])
    bound = kernel.bind(S)  # output views are replayed every cycle
    fail = _vector.zeros(blocks)
    tmp = np.empty(blocks, dtype=np.uint64)
    for cyc in range(start, ctx.n_cycles):
        cyc_sched = sched.get(cyc)
        if cyc_sched is not None:
            rows, bits = cyc_sched
            S[rows] ^= bits
        S[pa:pb] = stim[cyc]
        np.invert(S[pa:pb], out=S[n + pa:n + pb])
        kernel.execute_bound(S, bound)
        if len(po_rows):
            po = S.take(po_rows, axis=0)
            po ^= trace[cyc]
            np.bitwise_or.reduce(po, axis=0, out=tmp)
            fail |= tmp
        nxt = S.take(d_rows, axis=0)
        S[qa:qb] = nxt
        np.invert(nxt, out=nxt)
        S[n + qa:n + qb] = nxt
    diff = _vector.zeros(blocks)
    if qb > qa:
        np.bitwise_or.reduce(S[qa:qb] ^ final, axis=0, out=diff)
    fail_int = _vector.from_blocks(fail) & lanes
    latent_int = _vector.from_blocks(diff) & lanes & ~fail_int
    return fail_int, latent_int


def _outcome_list(fail: int, latent: int, count: int) -> list[str]:
    """Per-lane outcome labels from the packed fail/latent words.

    The naive per-lane ``(word >> i) & 1`` probe rescans the big int
    per lane — quadratic in width once words span thousands of bits —
    so wide words unpack through numpy in one pass and only the set
    bits are visited.
    """
    if count > 64 and _vector.HAVE_NUMPY and (fail | latent):
        np = _vector.np
        nbytes = (count + 7) // 8
        outcomes = [MASKED] * count

        def hot(word: int):
            arr = np.frombuffer(word.to_bytes(nbytes, "little"),
                                dtype=np.uint8)
            return np.flatnonzero(
                np.unpackbits(arr, bitorder="little")[:count]).tolist()

        for i in hot(latent):
            outcomes[i] = LATENT
        for i in hot(fail):  # fail wins where both are set (they can't
            outcomes[i] = FAILURE  # be, but keep the precedence explicit)
        return outcomes
    return [FAILURE if (fail >> i) & 1 else
            LATENT if (latent >> i) & 1 else MASKED
            for i in range(count)]


def seu_outcomes(ctx: LaneContext,
                 points: Sequence[tuple[str, int]]) -> list[str]:
    """Classify up to ``ctx.width`` SEU points in one packed run.

    Lane *i* flips ``points[i] = (flop, cycle)`` before that cycle is
    evaluated — exactly :func:`repro.soft_error.seu.inject_seu`'s
    semantics — and the masked/latent/failure split is recovered per
    lane by XOR against the shared golden trace.
    """
    if len(points) > ctx.width:
        raise ValueError(f"{len(points)} points exceed lane width "
                         f"{ctx.width}")
    flips: dict[int, dict[str, int]] = {}
    start = ctx.n_cycles
    for lane, (flop, cyc) in enumerate(points):
        if cyc < 0 or cyc >= ctx.n_cycles:
            # the flip never fires inside the workload: provably masked
            # (matching inject_seu; a negative index must not reach the
            # context lists, where it would wrap around)
            continue
        per_cycle = flips.setdefault(cyc, {})
        per_cycle[flop] = per_cycle.get(flop, 0) | (1 << lane)
        start = min(start, cyc)
    if start >= ctx.n_cycles:
        return [MASKED] * len(points)
    fail, latent = propagate(ctx, flips, start, len(points))
    return _outcome_list(fail, latent, len(points))


def transient_outcomes(
    ctx: LaneContext,
    points: Sequence[tuple[Any, int]],
    inject: Callable[[Any, int], tuple[bool, Mapping[str, int]]],
) -> list[str]:
    """Classify up to ``ctx.width`` transient injections in one packed run.

    ``inject(fault, cycle)`` performs the backend-specific injection
    cycle against golden data and returns ``(failed_now, state_delta)``:
    whether a primary output already differs in the injection cycle, and
    the per-flop XOR the perturbation leaves on the state entering
    ``cycle + 1``.  Points that fail immediately, leave no perturbation
    (masked), or perturb only the post-workload state (latent) are
    resolved without a lane; the rest share one packed propagation.
    """
    if len(points) > ctx.width:
        raise ValueError(f"{len(points)} points exceed lane width "
                         f"{ctx.width}")
    outcomes: list[str | None] = [None] * len(points)
    flips: dict[int, dict[str, int]] = {}
    start = ctx.n_cycles
    lane_of: list[int] = []
    for i, (fault, cyc) in enumerate(points):
        if cyc < 0:
            # a negative index would silently wrap into golden data here
            # (and in the per-point reference) — refuse loudly instead
            raise ValueError(f"injection cycle {cyc} is negative")
        failed_now, delta = inject(fault, cyc)
        if failed_now:
            outcomes[i] = FAILURE
            continue
        hot = [q for q, bit in delta.items() if bit]
        if not hot:
            outcomes[i] = MASKED
            continue
        if cyc + 1 >= ctx.n_cycles:
            outcomes[i] = LATENT  # perturbed state survives to the end
            continue
        lane_mask = 1 << len(lane_of)
        per_cycle = flips.setdefault(cyc + 1, {})
        for q in hot:
            per_cycle[q] = per_cycle.get(q, 0) | lane_mask
        start = min(start, cyc + 1)
        lane_of.append(i)
    if lane_of:
        fail, latent = propagate(ctx, flips, start, len(lane_of))
        labels = _outcome_list(fail, latent, len(lane_of))
        for i, label in zip(lane_of, labels):
            outcomes[i] = label
    return outcomes  # type: ignore[return-value]
