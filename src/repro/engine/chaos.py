"""Deterministic harness-fault injection: chaos testing for the engine.

The rest of this package injects faults into *designs*; this module
injects faults into the *campaign harness itself*, so the engine's
fault-tolerance machinery — chunk retry with backoff, quarantine, the
process → thread → serial recovery ladder, chunk timeouts,
checkpoint/resume — can be driven deterministically in tests and CI
instead of waiting for a flaky pool in production.

:class:`ChaosBackend` wraps any :class:`~repro.engine.core
.InjectionBackend` transparently (same ``name``/identity, same
outcomes, picklable iff the inner backend is) and sabotages the
execution of chunks containing scripted trigger points:

* ``raise``   — raise :class:`ChaosError` from the batch call;
* ``hang``    — sleep ``hang_s`` seconds, then raise (drives
  ``EngineConfig.chunk_timeout``; without a timeout the chunk
  eventually fails and retries like a ``raise``);
* ``die``     — ``os._exit`` the *worker* process mid-batch (breaks a
  process pool; in the parent process it degrades to ``raise`` so a
  serial campaign is not killed);
* ``malform`` — return a wrong-shaped result instead of injections.

Each :class:`ChaosFault` fires for its first ``failures`` executions of
the triggering chunk and then lets it run clean — exactly the shape of
a transient harness fault the retry loop must survive.  The attempt
counter lives in a scratch directory as ``O_CREAT | O_EXCL`` marker
files, so it counts correctly across worker *processes* (a worker that
died mid-chunk has still consumed an attempt) and needs no shared
memory.  Marker scratch is campaign-scoped: a cleanly completed
campaign clears its markers (engine ``campaign_finished`` hook) and
every owned scratch dir is swept by :func:`cleanup_scratch` (invoked
from ``shutdown_pools()`` and atexit), so nothing leaks into the temp
dir.

:class:`HostFault` / :class:`HostChaos` extend the same idea one level
up, to the campaign *service* (:mod:`repro.service`): scripted
host-level failures — SIGKILL mid-chunk, frozen heartbeats, clock
skew, a stale worker resuming after its lease was reassigned — that
the lease machinery must absorb while keeping the campaign report
byte-identical to a serial run.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import shutil
import signal
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

CHAOS_MODES = ("raise", "hang", "die", "malform")

# Scratch directories created by ChaosBackend instances in this process
# (attempt-marker files live there).  They used to leak into the temp
# dir after campaigns; now every owned dir is registered here and swept
# by :func:`cleanup_scratch` — called from ``engine.executors
# .shutdown_pools()`` and at interpreter exit — while a cleanly
# completed campaign clears its own markers via the engine's
# ``campaign_finished`` hook.
_scratch_dirs: set[str] = set()


def cleanup_scratch() -> None:
    """Remove every chaos scratch directory this process created."""
    for path in list(_scratch_dirs):
        _scratch_dirs.discard(path)
        shutil.rmtree(path, ignore_errors=True)


atexit.register(cleanup_scratch)


class ChaosError(RuntimeError):
    """The synthetic failure a scripted harness fault raises."""


@dataclass(frozen=True)
class ChaosFault:
    """One scripted harness fault.

    ``trigger`` is an injection *point*; the fault fires on any batch
    containing it (matched by ``repr``, since points cross process
    boundaries by pickling).  ``failures`` is how many executions of
    that batch to sabotage — ``None`` sabotages every one, which is how
    a *persistent* failure (quarantine path) is scripted.
    """

    trigger: Any
    mode: str = "raise"
    failures: int | None = 1

    def __post_init__(self) -> None:
        if self.mode not in CHAOS_MODES:
            raise ValueError(f"unknown chaos mode {self.mode!r}; "
                             f"pick one of {CHAOS_MODES}")


class ChaosBackend:
    """Transparent fault-injecting wrapper around any backend.

    Identity attributes mirror the wrapped backend exactly, so a
    campaign run under chaos has the same fingerprint as a clean one —
    a checkpointed chaos run can resume with the bare backend, which is
    precisely the "harness fixed, campaign resumed" scenario.
    """

    def __init__(self, inner: Any, faults: Iterable[ChaosFault],
                 scratch_dir: str | None = None,
                 hang_s: float = 30.0) -> None:
        self.inner = inner
        self.faults = list(faults)
        self.hang_s = hang_s
        if scratch_dir is None:
            scratch_dir = tempfile.mkdtemp(prefix="repro-chaos-")
            _scratch_dirs.add(scratch_dir)
        self.scratch_dir = scratch_dir
        self._parent_pid = os.getpid()
        self.name = inner.name
        self.circuit_name = inner.circuit_name
        self.fault_model = inner.fault_model
        self.workload = inner.workload
        self._trigger_reprs = [repr(f.trigger) for f in self.faults]

    # -- delegation ----------------------------------------------------
    def enumerate_points(self) -> Sequence[Any]:
        return self.inner.enumerate_points()

    def prepare(self) -> None:
        self.inner.prepare()

    def run_batch(self, points: Sequence[Any]) -> list:
        garbage = self._maybe_sabotage(points)
        if garbage is not None:
            return garbage
        return self.inner.run_batch(points)

    def campaign_finished(self) -> None:
        """Engine hook (clean campaign completion): drop this campaign's
        attempt markers so they never outlive the campaign.

        Parent-process only — a pool worker holding a pickled copy must
        not delete markers the parent still owns — and budgets reset
        with the markers: each campaign run on this wrapper gets the
        scripted faults afresh.
        """
        inner_hook = getattr(self.inner, "campaign_finished", None)
        if inner_hook is not None:
            inner_hook()
        if os.getpid() != self._parent_pid:
            return
        try:
            names = os.listdir(self.scratch_dir)
        except OSError:
            return
        for name in names:
            try:
                os.unlink(os.path.join(self.scratch_dir, name))
            except OSError:  # pragma: no cover - concurrent cleanup
                pass

    def __getattr__(self, name: str):
        # Optional-protocol hooks (lane_width, filter_points, use_filter,
        # __getstate__, ...) must look absent when the inner backend
        # lacks them; "inner" itself may be missing mid-unpickle.
        if name.startswith("__") or "inner" not in self.__dict__:
            raise AttributeError(name)
        inner = self.__dict__["inner"]
        if name == "run_batch_seeded":
            seeded = getattr(inner, "run_batch_seeded")  # may raise: good

            def run_batch_seeded(points: Sequence[Any], rng: Any) -> list:
                garbage = self._maybe_sabotage(points)
                if garbage is not None:
                    return garbage
                return seeded(points, rng)

            return run_batch_seeded
        return getattr(inner, name)

    # -- sabotage ------------------------------------------------------
    def _claim_attempt(self, fault_index: int) -> int:
        """The next attempt ordinal for this fault, claimed atomically
        across processes via O_EXCL marker files."""
        key = hashlib.sha1(
            self._trigger_reprs[fault_index].encode()).hexdigest()[:12]
        ordinal = 0
        while True:
            path = os.path.join(self.scratch_dir,
                                f"{key}.{fault_index}.{ordinal}")
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                ordinal += 1
                continue
            os.close(fd)
            return ordinal

    def _maybe_sabotage(self, points: Sequence[Any]) -> list | None:
        """Fire any armed fault whose trigger is in this batch.  Returns
        a malformed result for ``malform`` mode, else None (run clean)."""
        for index, fault in enumerate(self.faults):
            trigger = self._trigger_reprs[index]
            if not any(repr(point) == trigger for point in points):
                continue
            attempt = self._claim_attempt(index)
            if fault.failures is not None and attempt >= fault.failures:
                continue  # budget spent: this execution runs clean
            if fault.mode == "hang":
                time.sleep(self.hang_s)
                raise ChaosError(
                    f"hung execution {attempt} of chunk containing "
                    f"{fault.trigger!r} woke up")
            if fault.mode == "die":
                if os.getpid() != self._parent_pid:
                    os._exit(17)  # a real worker death: no cleanup, no trace
                # in the parent, dying would kill the campaign process
                # itself — degrade to a raise so serial runs stay testable
                raise ChaosError(
                    f"die-in-worker fault hit in the parent process "
                    f"(execution {attempt})")
            if fault.mode == "malform":
                return ["<malformed chaos result>"]
            raise ChaosError(
                f"injected failure {attempt} on chunk containing "
                f"{fault.trigger!r}")
        return None


# ----------------------------------------------------------------------
# host-level faults: sabotage a campaign-service *worker host*, not a
# chunk.  ChaosFault breaks one batch; HostFault breaks the machine the
# batch runs on — the failure modes the lease machinery must survive.
# ----------------------------------------------------------------------
HOST_FAULT_KINDS = ("sigkill", "freeze_heartbeat", "clock_skew", "stall")


@dataclass(frozen=True)
class HostFault:
    """One scripted host fault for a :class:`repro.service.worker
    .CampaignWorker`.

    ``after_chunks`` is the 1-based ordinal of the worker's *claimed*
    chunk the fault keys on:

    * ``sigkill``          — ``SIGKILL`` the worker process the moment
      it claims its Nth lease (dead mid-chunk: lease held, chunk
      unrecorded; recovery = deadline expiry + reclaim by a peer);
    * ``freeze_heartbeat`` — heartbeats stop once N chunks have been
      claimed; the worker keeps executing, so its leases expire under
      it and peers legitimately take the work over;
    * ``clock_skew``       — every clock read this worker makes is off
      by ``skew_s`` (positive: it reclaims peers' live leases early;
      negative: its own deadlines are born expired — either way the
      campaign must stay byte-identical, duplicates and all);
    * ``stall``            — the worker goes dark for ``stall_s``
      seconds *between executing its Nth chunk and recording it*: the
      stale-worker scenario, where the lease is reassigned and
      re-executed elsewhere while the original still comes back and
      writes its (idempotently ignored, byte-identical) result.
    """

    kind: str
    after_chunks: int = 1
    skew_s: float = 0.0
    stall_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in HOST_FAULT_KINDS:
            raise ValueError(f"unknown host fault {self.kind!r}; "
                             f"pick one of {HOST_FAULT_KINDS}")


class HostChaos:
    """Deterministic host-fault script, consulted by a CampaignWorker.

    Pickles with the worker spawn arguments (plain data + counters), so
    a scripted worker process carries its own sabotage.  The worker
    calls :meth:`on_chunk_claimed` right after winning a lease,
    :meth:`stall_before_record` between execution and recording, reads
    all wall-clock time through :meth:`now`, and its heartbeat thread
    checks :meth:`heartbeats_frozen` every tick.
    """

    def __init__(self, faults: Iterable[HostFault]) -> None:
        self.faults = list(faults)
        self.claimed = 0

    def now(self, real: float) -> float:
        """The worker's (possibly skewed) view of ``real`` wall time."""
        return real + sum(f.skew_s for f in self.faults
                          if f.kind == "clock_skew")

    def heartbeats_frozen(self) -> bool:
        return any(f.kind == "freeze_heartbeat"
                   and self.claimed >= f.after_chunks for f in self.faults)

    def on_chunk_claimed(self) -> None:
        """Advance the claim ordinal; a due ``sigkill`` fires here —
        after the lease row is committed, before any result exists."""
        self.claimed += 1
        for fault in self.faults:
            if fault.kind == "sigkill" and self.claimed == fault.after_chunks:
                os.kill(os.getpid(), signal.SIGKILL)  # no cleanup, no trace

    def stall_before_record(self) -> None:
        """Sleep out any ``stall`` fault due on the current chunk."""
        for fault in self.faults:
            if fault.kind == "stall" and self.claimed == fault.after_chunks:
                time.sleep(fault.stall_s)
