"""Deterministic harness-fault injection: chaos testing for the engine.

The rest of this package injects faults into *designs*; this module
injects faults into the *campaign harness itself*, so the engine's
fault-tolerance machinery — chunk retry with backoff, quarantine, the
process → thread → serial recovery ladder, chunk timeouts,
checkpoint/resume — can be driven deterministically in tests and CI
instead of waiting for a flaky pool in production.

:class:`ChaosBackend` wraps any :class:`~repro.engine.core
.InjectionBackend` transparently (same ``name``/identity, same
outcomes, picklable iff the inner backend is) and sabotages the
execution of chunks containing scripted trigger points:

* ``raise``   — raise :class:`ChaosError` from the batch call;
* ``hang``    — sleep ``hang_s`` seconds, then raise (drives
  ``EngineConfig.chunk_timeout``; without a timeout the chunk
  eventually fails and retries like a ``raise``);
* ``die``     — ``os._exit`` the *worker* process mid-batch (breaks a
  process pool; in the parent process it degrades to ``raise`` so a
  serial campaign is not killed);
* ``malform`` — return a wrong-shaped result instead of injections.

Each :class:`ChaosFault` fires for its first ``failures`` executions of
the triggering chunk and then lets it run clean — exactly the shape of
a transient harness fault the retry loop must survive.  The attempt
counter lives in a scratch directory as ``O_CREAT | O_EXCL`` marker
files, so it counts correctly across worker *processes* (a worker that
died mid-chunk has still consumed an attempt) and needs no shared
memory.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

CHAOS_MODES = ("raise", "hang", "die", "malform")


class ChaosError(RuntimeError):
    """The synthetic failure a scripted harness fault raises."""


@dataclass(frozen=True)
class ChaosFault:
    """One scripted harness fault.

    ``trigger`` is an injection *point*; the fault fires on any batch
    containing it (matched by ``repr``, since points cross process
    boundaries by pickling).  ``failures`` is how many executions of
    that batch to sabotage — ``None`` sabotages every one, which is how
    a *persistent* failure (quarantine path) is scripted.
    """

    trigger: Any
    mode: str = "raise"
    failures: int | None = 1

    def __post_init__(self) -> None:
        if self.mode not in CHAOS_MODES:
            raise ValueError(f"unknown chaos mode {self.mode!r}; "
                             f"pick one of {CHAOS_MODES}")


class ChaosBackend:
    """Transparent fault-injecting wrapper around any backend.

    Identity attributes mirror the wrapped backend exactly, so a
    campaign run under chaos has the same fingerprint as a clean one —
    a checkpointed chaos run can resume with the bare backend, which is
    precisely the "harness fixed, campaign resumed" scenario.
    """

    def __init__(self, inner: Any, faults: Iterable[ChaosFault],
                 scratch_dir: str | None = None,
                 hang_s: float = 30.0) -> None:
        self.inner = inner
        self.faults = list(faults)
        self.hang_s = hang_s
        self.scratch_dir = scratch_dir or tempfile.mkdtemp(
            prefix="repro-chaos-")
        self._parent_pid = os.getpid()
        self.name = inner.name
        self.circuit_name = inner.circuit_name
        self.fault_model = inner.fault_model
        self.workload = inner.workload
        self._trigger_reprs = [repr(f.trigger) for f in self.faults]

    # -- delegation ----------------------------------------------------
    def enumerate_points(self) -> Sequence[Any]:
        return self.inner.enumerate_points()

    def prepare(self) -> None:
        self.inner.prepare()

    def run_batch(self, points: Sequence[Any]) -> list:
        garbage = self._maybe_sabotage(points)
        if garbage is not None:
            return garbage
        return self.inner.run_batch(points)

    def __getattr__(self, name: str):
        # Optional-protocol hooks (lane_width, filter_points, use_filter,
        # __getstate__, ...) must look absent when the inner backend
        # lacks them; "inner" itself may be missing mid-unpickle.
        if name.startswith("__") or "inner" not in self.__dict__:
            raise AttributeError(name)
        inner = self.__dict__["inner"]
        if name == "run_batch_seeded":
            seeded = getattr(inner, "run_batch_seeded")  # may raise: good

            def run_batch_seeded(points: Sequence[Any], rng: Any) -> list:
                garbage = self._maybe_sabotage(points)
                if garbage is not None:
                    return garbage
                return seeded(points, rng)

            return run_batch_seeded
        return getattr(inner, name)

    # -- sabotage ------------------------------------------------------
    def _claim_attempt(self, fault_index: int) -> int:
        """The next attempt ordinal for this fault, claimed atomically
        across processes via O_EXCL marker files."""
        key = hashlib.sha1(
            self._trigger_reprs[fault_index].encode()).hexdigest()[:12]
        ordinal = 0
        while True:
            path = os.path.join(self.scratch_dir,
                                f"{key}.{fault_index}.{ordinal}")
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                ordinal += 1
                continue
            os.close(fd)
            return ordinal

    def _maybe_sabotage(self, points: Sequence[Any]) -> list | None:
        """Fire any armed fault whose trigger is in this batch.  Returns
        a malformed result for ``malform`` mode, else None (run clean)."""
        for index, fault in enumerate(self.faults):
            trigger = self._trigger_reprs[index]
            if not any(repr(point) == trigger for point in points):
                continue
            attempt = self._claim_attempt(index)
            if fault.failures is not None and attempt >= fault.failures:
                continue  # budget spent: this execution runs clean
            if fault.mode == "hang":
                time.sleep(self.hang_s)
                raise ChaosError(
                    f"hung execution {attempt} of chunk containing "
                    f"{fault.trigger!r} woke up")
            if fault.mode == "die":
                if os.getpid() != self._parent_pid:
                    os._exit(17)  # a real worker death: no cleanup, no trace
                # in the parent, dying would kill the campaign process
                # itself — degrade to a raise so serial runs stay testable
                raise ChaosError(
                    f"die-in-worker fault hit in the parent process "
                    f"(execution {attempt})")
            if fault.mode == "malform":
                return ["<malformed chaos result>"]
            raise ChaosError(
                f"injected failure {attempt} on chunk containing "
                f"{fault.trigger!r}")
        return None
