"""Unified fault-injection campaign engine (paper IV.A).

One parallel, statistically-adaptive execution core behind every FI
workload: backends adapt gate-level PPSFP, SEU, ISO 26262 safety and
SoC-level campaigns onto a shared chunked/parallel/early-stopping
runner with streaming CampaignDb persistence.  Execution strategies
(serial / GIL-bound threads / spawn-safe multicore processes / auto
probing) are pluggable via :mod:`repro.engine.executors`.
"""

from .backends import (
    DETECTED,
    UNDETECTED,
    PpsfpBackend,
    SafetyBackend,
    SeuBackend,
    SocBackend,
    ppsfp_result,
)
from .core import (
    CampaignReport,
    EarlyStop,
    EngineConfig,
    Injection,
    InjectionBackend,
    run_campaign,
)
from .executors import EXECUTOR_CHOICES, ExecutorPlan, chunk_seed, plan_executor

__all__ = [
    "CampaignReport",
    "DETECTED",
    "EXECUTOR_CHOICES",
    "EarlyStop",
    "EngineConfig",
    "ExecutorPlan",
    "Injection",
    "InjectionBackend",
    "PpsfpBackend",
    "SafetyBackend",
    "SeuBackend",
    "SocBackend",
    "UNDETECTED",
    "chunk_seed",
    "plan_executor",
    "ppsfp_result",
    "run_campaign",
]
