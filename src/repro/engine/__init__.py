"""Unified fault-injection campaign engine (paper IV.A).

One parallel, statistically-adaptive execution core behind every FI
workload: backends adapt gate-level PPSFP, SEU, ISO 26262 safety and
SoC-level campaigns onto a shared chunked/parallel/early-stopping
runner with streaming CampaignDb persistence.
"""

from .backends import (
    DETECTED,
    UNDETECTED,
    PpsfpBackend,
    SafetyBackend,
    SeuBackend,
    SocBackend,
    ppsfp_result,
)
from .core import (
    CampaignReport,
    EarlyStop,
    EngineConfig,
    Injection,
    InjectionBackend,
    run_campaign,
)

__all__ = [
    "CampaignReport",
    "DETECTED",
    "EarlyStop",
    "EngineConfig",
    "Injection",
    "InjectionBackend",
    "PpsfpBackend",
    "SafetyBackend",
    "SeuBackend",
    "SocBackend",
    "UNDETECTED",
    "ppsfp_result",
    "run_campaign",
]
