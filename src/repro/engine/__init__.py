"""Unified fault-injection campaign engine (paper IV.A).

One parallel, statistically-adaptive execution core behind every FI
workload: backends adapt gate-level PPSFP, SEU, ISO 26262 safety,
SoC-level, RSN test/diagnosis, laser-FI, side-channel trace and GPGPU
SEU campaigns — plus the dynamic-slicing campaign, which drives the
engine's point-filter stage — onto a shared chunked/parallel/
early-stopping runner with streaming CampaignDb persistence.
Execution strategies (serial / GIL-bound threads / spawn-safe multicore
processes with a persistent cross-campaign pool / auto probing) are
pluggable via :mod:`repro.engine.executors`, and sequential fault models
pack up to :data:`repro.engine.lanes.DEFAULT_LANE_WIDTH` injections into
one bit-parallel run via :mod:`repro.engine.lanes`.
"""

from .backends import (
    DETECTED,
    UNDETECTED,
    PpsfpBackend,
    SafetyBackend,
    SeuBackend,
    SocBackend,
    ppsfp_result,
)
from .core import (
    CampaignReport,
    EarlyStop,
    EngineConfig,
    Injection,
    InjectionBackend,
    QuarantinedChunk,
    resume_campaign,
    run_campaign,
)
from .executors import (
    EXECUTOR_CHOICES,
    ChunkError,
    ChunkTimeout,
    ExecutorPlan,
    chunk_seed,
    plan_executor,
    shutdown_pools,
)
from .lanes import DEFAULT_LANE_WIDTH

#: Exports resolved lazily from ``.workloads`` (PEP 562): process-pool
#: workers unpickling one of the original backends import this package,
#: and must not pay for the new workload families' module graph.
_WORKLOAD_EXPORTS = frozenset({
    "CompositeBackend",
    "GpgpuSeuBackend",
    "LaserFiBackend",
    "RsnDiagnosisBackend",
    "SKIP_DEAD_FLOP",
    "SKIP_NO_ACTIVATION",
    "SKIP_NO_PATH",
    "ScaTraceBackend",
    "SlicingBackend",
    "point_seed",
})


#: Exports resolved lazily from ``.chaos`` (same rationale: the chaos
#: wrapper is a test/CI tool, not worker-import baggage).
_CHAOS_EXPORTS = frozenset({
    "ChaosBackend",
    "ChaosError",
    "ChaosFault",
    "HostChaos",
    "HostFault",
    "cleanup_scratch",
})


def __getattr__(name: str):
    if name in _WORKLOAD_EXPORTS or name == "workloads":
        from importlib import import_module

        workloads = import_module(".workloads", __name__)
        return workloads if name == "workloads" else getattr(workloads, name)
    if name in _CHAOS_EXPORTS or name == "chaos":
        from importlib import import_module

        chaos = import_module(".chaos", __name__)
        return chaos if name == "chaos" else getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "CampaignReport",
    "ChaosBackend",
    "ChaosError",
    "ChaosFault",
    "ChunkError",
    "ChunkTimeout",
    "CompositeBackend",
    "DEFAULT_LANE_WIDTH",
    "DETECTED",
    "EXECUTOR_CHOICES",
    "EarlyStop",
    "EngineConfig",
    "ExecutorPlan",
    "GpgpuSeuBackend",
    "HostChaos",
    "HostFault",
    "Injection",
    "InjectionBackend",
    "LaserFiBackend",
    "PpsfpBackend",
    "QuarantinedChunk",
    "RsnDiagnosisBackend",
    "SKIP_DEAD_FLOP",
    "SKIP_NO_ACTIVATION",
    "SKIP_NO_PATH",
    "SafetyBackend",
    "ScaTraceBackend",
    "SeuBackend",
    "SlicingBackend",
    "SocBackend",
    "UNDETECTED",
    "chunk_seed",
    "cleanup_scratch",
    "plan_executor",
    "point_seed",
    "ppsfp_result",
    "resume_campaign",
    "run_campaign",
    "shutdown_pools",
]
