"""Pluggable chunk executors for the campaign engine.

The engine (:mod:`repro.engine.core`) turns a campaign into an ordered
list of point chunks; this module owns *how* those chunks execute:

* ``serial``  — in the calling thread, chunk by chunk;
* ``thread``  — a sliding-window ``ThreadPoolExecutor``.  Deterministic
  overlap, but pure-Python backends hold the GIL, so it only buys
  wall-clock when batches release it;
* ``process`` — a spawn-safe ``ProcessPoolExecutor``.  The backend and
  the chunk list are pickled **once** per campaign; workers call
  ``prepare()`` themselves (golden runs and caches are rebuilt per
  process, never pickled), and tasks are just chunk indices.  True
  multicore scaling for CPU-bound backends.  By default the pool itself
  is **persistent**: it lives in a module-level registry keyed by worker
  count and is reused across campaigns, so sweep-style callers
  (``compare_configurations``, ``encoding_style_study``) pay interpreter
  spawn and module imports once.  Each campaign's payload is written to
  a temp file and lazily loaded by every worker on its first task of
  that campaign (a token guards the worker-side cache), because a
  long-lived pool cannot re-run initializers.  ``shutdown_pools()``
  tears the registry down (also registered at exit);
* ``auto``    — probes the campaign (visible CPUs, backend picklability,
  per-batch cost measured on the first chunk) and picks the fastest safe
  executor, logging the reason instead of crashing when the process pool
  is not applicable.

Every executor preserves the engine's determinism contract: chunks are
accounted strictly in index order, each chunk runs with its own RNG
stream derived from ``(campaign seed, chunk index)``, and an early-stop
decision cancels all queued chunks and waits out in-flight ones before
returning — speculative batches past the stop point are never accounted
(and never half-recorded in the database).
"""

from __future__ import annotations

import atexit
import itertools
import logging
import multiprocessing
import os
import pickle
import random
import sys
import tempfile
import threading
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Sequence

log = logging.getLogger("repro.engine")

EXECUTOR_CHOICES = ("auto", "serial", "thread", "process")


class ChunkError(Exception):
    """One chunk's *execution* failed (the backend raised, or the worker
    returned garbage).  ``cause`` is the original error.

    The wrapper exists so the engine can tell chunk failures — which are
    retried and eventually quarantined — apart from errors raised by its
    own accounting path (``on_chunk`` hooks, database writes), which
    must propagate raw: a crash simulated through ``on_chunk`` has to
    abort the campaign, not burn the chunk's retry budget.
    """

    def __init__(self, cause: BaseException) -> None:
        super().__init__(f"{type(cause).__name__}: {cause}")
        self.cause = cause


class ChunkTimeout(Exception):
    """A dispatched chunk exceeded ``EngineConfig.chunk_timeout``.

    The hung task cannot be killed (``concurrent.futures`` offers no
    per-task cancellation of running work), so the pool it sits on is
    abandoned without waiting and the engine degrades one rung of the
    recovery ladder before retrying the chunk.
    """

# auto-probe thresholds (module level so tests and benchmarks can tune):
# a chunk cheaper than MIN_BATCH_COST_S is dominated by pool dispatch,
# and a campaign with less than MIN_CAMPAIGN_COST_S of work left cannot
# amortise spawning worker interpreters.
MIN_BATCH_COST_S = 0.002
MIN_CAMPAIGN_COST_S = 0.25

# Vector-tier campaigns (lane_width > 64) retire up to lane_width points
# per dispatched chunk, so the conservative MIN_BATCH_COST_S — tuned to
# keep *scalar* campaigns from drowning in per-chunk IPC — would send
# exactly the densest campaigns to the serial loop.  For them the bail
# threshold drops to the bare per-dispatch overhead instead (the
# remaining-work guard still keeps genuinely small campaigns out of the
# pool).
MIN_DISPATCH_COST_S = 0.0004

# Minimum speedup of the 2-thread concurrency probe (two chunks on two
# threads vs twice the warm serial chunk cost) for the auto probe to
# pick the thread executor.  Pure-Python batches hold the GIL, so two
# threads serialize (probe speedup ~1.0) and threads only add contention
# — BENCH measured thread_x4 at 0.82x serial on such backends; batches
# that release the GIL (I/O, native extensions) probe near 2.0.
GIL_RELEASE_MIN = 1.25

_MASK64 = (1 << 64) - 1


def chunk_seed(seed: int, index: int) -> int:
    """Per-chunk RNG seed: a splitmix-style mix of campaign seed and
    chunk index, so every chunk owns an independent, reproducible stream
    no matter which worker (thread, process, or the parent) runs it."""
    mixed = ((seed & _MASK64) * 0x9E3779B97F4A7C15
             + (index + 1) * 0xBF58476D1CE4E5B9) & _MASK64
    mixed ^= mixed >> 31
    return (mixed * 0x94D049BB133111EB) & _MASK64


def execute_chunk(backend: Any, chunk: Sequence[Any], seed: int) -> list:
    """Run one chunk, threading the per-chunk RNG through if the backend
    wants one (the optional ``run_batch_seeded`` hook for stochastic
    workloads).  The ``random.Random`` is constructed here, inside the
    worker task, so concurrent chunks never share RNG state."""
    seeded = getattr(backend, "run_batch_seeded", None)
    if seeded is not None:
        return seeded(chunk, random.Random(seed))
    return backend.run_batch(chunk)


def execute_chunk_timed(backend: Any, chunk: Sequence[Any], seed: int,
                        timeout: float | None) -> list:
    """:func:`execute_chunk` with a deadline, for parent-side retries.

    A chunk that already timed out on a pool may hang deterministically;
    retrying it inline would block the campaign forever on exactly the
    input ``chunk_timeout`` was configured to survive.  With a timeout
    the chunk runs on a one-shot daemon thread instead and an overdue
    result raises :class:`ChunkTimeout` — the hung thread cannot be
    killed, so it is abandoned (daemon: it dies with the interpreter).
    """
    if timeout is None:
        return execute_chunk(backend, chunk, seed)
    box: list[tuple[bool, Any]] = []

    def _run() -> None:
        try:
            box.append((True, execute_chunk(backend, chunk, seed)))
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            box.append((False, exc))

    worker = threading.Thread(target=_run, daemon=True,
                              name="repro-chunk-retry")
    worker.start()
    worker.join(timeout)
    if not box:
        raise ChunkTimeout(f"parent-side retry overdue after {timeout}s")
    ok, value = box[0]
    if ok:
        return value
    raise value


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _window(workers: int) -> int:
    """Sliding submission window: keeps every worker busy while bounding
    the speculative work discarded when early stop converges."""
    return max(4, 2 * workers)


# ----------------------------------------------------------------------
# shared shipping of large payloads: pattern batches park in one temp
# file instead of being re-pickled into every campaign payload
# ----------------------------------------------------------------------
#: Pickled payloads at or past this size ship via temp file (bytes).
SHIP_BYTES_MIN = 1 << 18

_blob_tokens = itertools.count(1)
_blob_paths: set[str] = set()
_blob_cache: dict[tuple[int, str], Any] = {}
_BLOB_CACHE_MAX = 4  # loaded blobs kept per process (LRU)
_MISSING = object()


class ShippedBlob:
    """A large pickled value parked once in a temp file.

    Created in the campaign parent (typically from a backend's
    ``__getstate__`` when its pattern payload crosses
    :data:`SHIP_BYTES_MIN`); pickles as just ``(token, path, nbytes)``.
    Receiving processes :meth:`load` the value lazily on first use and
    memoize it in a small per-process cache keyed by ``(token, path)``,
    so a persistent-pool worker that runs many chunks of the same
    campaign unpickles the patterns once.  The creating process keeps
    the value in memory (its ``load`` never touches the file) and owns
    the file: it is unlinked when the blob is garbage collected, closed,
    or at interpreter exit.
    """

    def __init__(self, value: Any, data: bytes | None = None) -> None:
        if data is None:
            data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        fd, path = tempfile.mkstemp(prefix="repro-engine-blob-",
                                    suffix=".pkl")
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        self.token = next(_blob_tokens)
        self.path = path
        self.nbytes = len(data)
        self._value = value
        self._owner = True
        _blob_paths.add(path)

    def load(self) -> Any:
        """The shipped value (from memory, cache, or the file)."""
        if self._value is not _MISSING:
            return self._value
        key = (self.token, self.path)
        value = _blob_cache.pop(key, _MISSING)
        if value is _MISSING:
            with open(self.path, "rb") as fh:
                value = pickle.load(fh)
            while len(_blob_cache) >= _BLOB_CACHE_MAX:
                _blob_cache.pop(next(iter(_blob_cache)))
        _blob_cache[key] = value  # (re)insert at the end: LRU refresh
        return value

    def close(self) -> None:
        """Unlink the backing file (owner side only; idempotent)."""
        if self._owner:
            self._owner = False
            _blob_paths.discard(self.path)
            try:
                os.unlink(self.path)
            except OSError:  # pragma: no cover - already gone
                pass

    def __del__(self) -> None:  # pragma: no cover - GC timing
        self.close()

    def __getstate__(self) -> dict:
        return {"token": self.token, "path": self.path,
                "nbytes": self.nbytes}

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._value = _MISSING
        self._owner = False


def ship_if_large(value: Any, threshold: int | None = None):
    """Return ``(blob, data)``: a :class:`ShippedBlob` when ``value``
    pickles to at least ``threshold`` (default :data:`SHIP_BYTES_MIN`)
    bytes, else ``(None, data)`` with the pickle for inline embedding."""
    data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    limit = SHIP_BYTES_MIN if threshold is None else threshold
    if len(data) >= limit:
        return ShippedBlob(value, data), data
    return None, data


def _cleanup_blobs() -> None:  # pragma: no cover - interpreter exit
    for path in list(_blob_paths):
        try:
            os.unlink(path)
        except OSError:
            pass
    _blob_paths.clear()


atexit.register(_cleanup_blobs)


@dataclass
class ExecutorPlan:
    """Resolved execution strategy for one campaign.

    ``probe_batches`` holds results of leading chunks the auto-probe
    already executed in the parent — the engine accounts them first so
    probing never repeats (or reorders) work.  ``payload`` carries the
    pre-pickled ``(backend, chunks, seeds)`` blob when the probe already
    proved picklability, so the process pool does not pickle twice.
    """

    name: str
    reason: str = ""
    payload: bytes | None = None
    probe_batches: list | None = None


def _thread_or_serial(backend: Any, chunks: Sequence[Sequence[Any]],
                      seeds: Sequence[int], reason: str,
                      probe_batches: list) -> ExecutorPlan:
    """Decide thread vs serial for a campaign the process pool rejected.

    Thread pools only beat serial when batches release the GIL; on
    pure-Python CPU-bound backends they merely add contention (BENCH:
    thread_x4 at 0.82x serial).  The probe re-times one chunk serially
    (warm — chunk 0's timing includes first-use cache building) and then
    runs two chunks on two threads: genuine parallelism shows a ~2x
    speedup, GIL-bound batches ~1x.  Every probed chunk is handed back
    in ``probe_batches`` for in-order accounting, exactly once.
    """
    done = len(probe_batches)
    if len(chunks) - done < 3:
        return ExecutorPlan(
            "serial", f"{reason}; too few chunks left to overlap threads",
            probe_batches=probe_batches)
    t0 = time.perf_counter()
    probe_batches.append(execute_chunk(backend, chunks[done], seeds[done]))
    warm_batch = time.perf_counter() - t0
    pool = ThreadPoolExecutor(max_workers=2)
    t0 = time.perf_counter()
    futures = [pool.submit(execute_chunk, backend, chunks[i], seeds[i])
               for i in (done + 1, done + 2)]
    probe_batches.extend(f.result() for f in futures)
    paired = time.perf_counter() - t0
    pool.shutdown()
    speedup = (2 * warm_batch) / paired if paired > 0 else 2.0
    if speedup < GIL_RELEASE_MIN:
        return ExecutorPlan(
            "serial",
            f"{reason}; 2-thread probe {speedup:.2f}x: batches hold the GIL",
            probe_batches=probe_batches)
    return ExecutorPlan(
        "thread", f"{reason}; 2-thread probe {speedup:.2f}x",
        probe_batches=probe_batches)


def plan_executor(backend: Any, chunks: Sequence[Sequence[Any]],
                  config: Any, seeds: Sequence[int]) -> ExecutorPlan:
    """Resolve ``config.executor`` to a concrete strategy.

    Explicit choices pass through untouched; ``auto`` probes and falls
    back with a reason instead of crashing.  Campaigns the process pool
    cannot take (cheap batches, little work, unpicklable backend) are
    further probed for GIL release before threads are chosen — a thread
    pool over GIL-bound batches is slower than the serial loop.
    """
    choice = getattr(config, "executor", "auto")
    if choice != "auto":  # validated by EngineConfig.__post_init__
        return ExecutorPlan(choice)
    if config.workers <= 1 or len(chunks) <= 1:
        return ExecutorPlan("serial", "single worker or single chunk")
    if _usable_cpus() < 2:
        return ExecutorPlan("serial", "single CPU visible: no pool can scale")
    # cost probe first — it needs no serialization, and cheap campaigns
    # skip the (potentially large) pickle entirely
    backend.prepare()
    t0 = time.perf_counter()
    batch0 = execute_chunk(backend, chunks[0], seeds[0])
    per_batch = time.perf_counter() - t0
    remaining = per_batch * (len(chunks) - 1)
    # Lane-aware cost floor: a vector-tier chunk (lane_width > 64) packs
    # up to lane_width points into each dispatch, so a "cheap" batch
    # still amortises process-shipping overhead across a dense point
    # payload — only batches below the raw dispatch cost bail, and only
    # when enough total work remains to amortise the pool at all.
    lane_width = max(1, int(getattr(backend, "lane_width", 1) or 1))
    batch_floor = (MIN_DISPATCH_COST_S
                   if lane_width > 64 and remaining >= MIN_CAMPAIGN_COST_S
                   else MIN_BATCH_COST_S)
    if per_batch < batch_floor:
        return _thread_or_serial(
            backend, chunks, seeds,
            f"per-batch cost {per_batch * 1e3:.2f}ms below process dispatch "
            "overhead", [batch0])
    if remaining < MIN_CAMPAIGN_COST_S:
        return _thread_or_serial(
            backend, chunks, seeds,
            f"~{remaining * 1e3:.0f}ms of work left: too small to amortise "
            "process spawn", [batch0])
    # backends drop prepared state on pickling, so probing before the
    # dumps does not bloat the payload
    try:
        payload = pickle.dumps((backend, chunks, list(seeds)),
                               protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # pickle raises many types (Pickling, Type, ...)
        return _thread_or_serial(
            backend, chunks, seeds,
            f"backend not picklable ({type(exc).__name__}: {exc})", [batch0])
    return ExecutorPlan(
        "process",
        f"picklable backend, {per_batch * 1e3:.1f}ms/batch x "
        f"{len(chunks) - 1} chunks remaining",
        payload=payload, probe_batches=[batch0])


# ----------------------------------------------------------------------
# execution strategies: each runs chunks[start:] and accounts them in
# index order via ``account`` (returns True to stop early)
# ----------------------------------------------------------------------
def run_serial(backend: Any, chunks: Sequence[Sequence[Any]],
               seeds: Sequence[int],
               account: Callable[[list], bool], start: int = 0) -> bool:
    for i in range(start, len(chunks)):
        try:
            batch = execute_chunk(backend, chunks[i], seeds[i])
        except Exception as exc:
            raise ChunkError(exc) from exc
        if account(batch):
            return True
    return False


def _drain(futures: deque) -> None:
    """Cancel queued futures and wait out in-flight ones, aggregating
    their errors into one log line instead of silently swallowing them
    (a speculative chunk past an early stop may legitimately fail — but
    a *pattern* of suppressed failures is a harness bug worth seeing)."""
    for future in futures:
        future.cancel()
    suppressed: list[str] = []
    for future in futures:  # wait out whatever could not cancel
        if not future.cancelled():
            try:
                future.result()
            except Exception as exc:  # noqa: BLE001 - collected, not masked
                suppressed.append(f"{type(exc).__name__}: {exc}")
    if suppressed:
        log.warning(
            "engine: drained %d suppressed chunk error(s) after stop: %s",
            len(suppressed), "; ".join(suppressed[:3])
            + ("; ..." if len(suppressed) > 3 else ""))


def _run_pool(pool: Any, submit: Callable[[int], Any], n_chunks: int,
              window: int, account: Callable[[list], bool],
              start: int, shutdown: bool = True,
              timeout: float | None = None) -> bool:
    """Sliding-window dispatch with deterministic chunk-order accounting.

    Futures are consumed strictly in submission (= chunk) order.  On
    early stop — and on any error — queued chunks are cancelled and
    in-flight ones are waited out (their errors aggregated into one log
    line) before returning, so no speculative batch is accounted or left
    running in the background.  With ``shutdown=False`` (persistent
    pools) the drain is identical but the pool itself stays alive for
    the next campaign.

    With a ``timeout``, a chunk whose result is overdue raises
    :class:`ChunkTimeout`; the hung task cannot be waited out, so the
    pool is shut down without waiting (persistent pools: the caller
    evicts it) and never drained.
    """
    futures: deque = deque()
    next_chunk = start
    converged = False
    hung = False
    try:
        while next_chunk < n_chunks and len(futures) < window:
            futures.append(submit(next_chunk))
            next_chunk += 1
        while futures:
            future = futures.popleft()
            try:
                batch = future.result(timeout)
            # FutureTimeout: on 3.10 concurrent.futures raises its own
            # TimeoutError (an Exception, not the builtin) — without it
            # the timeout would classify as ChunkError and the finally
            # path would drain (= block forever on) the hung future
            except (TimeoutError, FutureTimeout) as exc:
                hung = True
                raise ChunkTimeout(
                    f"chunk result overdue after {timeout}s") from exc
            except (BrokenProcessPool, OSError):
                raise  # pool-level failure: the engine degrades the ladder
            except Exception as exc:
                raise ChunkError(exc) from exc
            if account(batch):
                converged = True
                break
            if next_chunk < n_chunks:
                futures.append(submit(next_chunk))
                next_chunk += 1
    finally:
        if hung:
            # never wait on a hung task — abandon the pool wholesale
            pool.shutdown(wait=False, cancel_futures=True)
        elif shutdown:
            _drain(futures)
            pool.shutdown(wait=True, cancel_futures=True)
        else:
            _drain(futures)
    return converged


def run_thread(backend: Any, chunks: Sequence[Sequence[Any]],
               seeds: Sequence[int], account: Callable[[list], bool],
               workers: int, start: int = 0,
               timeout: float | None = None) -> bool:
    pool = ThreadPoolExecutor(max_workers=workers)

    def submit(i: int):
        return pool.submit(execute_chunk, backend, chunks[i], seeds[i])

    return _run_pool(pool, submit, len(chunks), _window(workers), account,
                     start, timeout=timeout)


# ----------------------------------------------------------------------
# process pool: backend + chunks ship once per worker per campaign
# ----------------------------------------------------------------------
_worker_state: tuple | None = None


def _process_worker_init(payload: bytes) -> None:
    global _worker_state
    backend, chunks, seeds = pickle.loads(payload)
    backend.prepare()  # golden runs / caches rebuilt locally, never shipped
    _worker_state = (backend, chunks, seeds)


def _process_worker_run(index: int) -> tuple[int, list]:
    backend, chunks, seeds = _worker_state
    return index, execute_chunk(backend, chunks[index], seeds[index])


# Persistent pools: one spawn pool per worker count, reused across
# campaigns.  A long-lived pool cannot re-run its initializer, so each
# campaign's payload is parked in a temp file and every worker loads it
# lazily on its first task of that campaign; ``_campaign_state`` caches
# exactly one campaign per worker (tokens are monotonically increasing,
# so a stale cache is simply replaced).  The parent deletes the file
# only after every future of the campaign has completed or been
# cancelled, so no worker can read past the unlink.
_pool_registry: dict[int, ProcessPoolExecutor] = {}
_campaign_tokens = itertools.count(1)
_campaign_state: tuple | None = None  # worker-side: (token, backend, ...)


def persistent_pool(workers: int) -> ProcessPoolExecutor:
    """The registry pool for ``workers``, spawned on first use."""
    workers = max(1, workers)
    pool = _pool_registry.get(workers)
    if pool is None:
        pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context("spawn"))
        _pool_registry[workers] = pool
    return pool


def _discard_pool(workers: int) -> None:
    pool = _pool_registry.pop(max(1, workers), None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_pools() -> None:
    """Tear down every persistent pool (tests, benchmarks, atexit) and
    sweep chaos scratch directories (attempt-marker files) with them."""
    pools = list(_pool_registry.values())
    _pool_registry.clear()
    for pool in pools:
        pool.shutdown(wait=False, cancel_futures=True)
    # Lazy on purpose: chaos is a test/CI tool and must not become
    # worker-import baggage — only sweep if it was ever imported.
    chaos = sys.modules.get("repro.engine.chaos")
    if chaos is not None:
        chaos.cleanup_scratch()


atexit.register(shutdown_pools)


def _persistent_worker_run(token: int, path: str,
                           index: int) -> tuple[int, list]:
    global _campaign_state
    if _campaign_state is None or _campaign_state[0] != token:
        _campaign_state = None  # free the stale campaign before loading
        with open(path, "rb") as fh:
            backend, chunks, seeds = pickle.load(fh)
        backend.prepare()  # once per worker per campaign, as before
        _campaign_state = (token, backend, chunks, seeds)
    _, backend, chunks, seeds = _campaign_state
    return index, execute_chunk(backend, chunks[index], seeds[index])


def _persistent_worker_release(token: int) -> None:
    """Drop the cached campaign if it is (at most) ``token``'s.

    Tokens increase monotonically, so a worker that already loaded a
    *newer* campaign must keep it; everything older is garbage."""
    global _campaign_state
    if _campaign_state is not None and _campaign_state[0] <= token:
        _campaign_state = None


def run_process(backend: Any, chunks: Sequence[Sequence[Any]],
                seeds: Sequence[int], account: Callable[[list], bool],
                workers: int, start: int = 0,
                payload: bytes | None = None,
                reuse_pool: bool = True,
                timeout: float | None = None) -> bool:
    if payload is None:
        payload = pickle.dumps((backend, chunks, list(seeds)),
                               protocol=pickle.HIGHEST_PROTOCOL)
    n_workers = max(1, min(workers, len(chunks) - start))

    expected = start

    def account_indexed(result: tuple[int, list]) -> bool:
        nonlocal expected
        index, batch = result
        if index != expected:
            raise RuntimeError(
                f"chunk accounting out of order: got {index}, "
                f"expected {expected}")
        expected += 1
        return account(batch)

    if reuse_pool:
        pool = persistent_pool(workers)
        token = next(_campaign_tokens)
        fd, path = tempfile.mkstemp(prefix="repro-engine-payload-",
                                    suffix=".pkl")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)

            def submit(i: int):
                return pool.submit(_persistent_worker_run, token, path, i)

            try:
                return _run_pool(pool, submit, len(chunks),
                                 _window(n_workers), account_indexed, start,
                                 shutdown=False, timeout=timeout)
            except ChunkTimeout:
                # a worker is stuck on the hung task; the pool cannot be
                # trusted (or waited on) — evict without waiting
                _pool_registry.pop(max(1, workers), None)
                raise
            except (BrokenProcessPool, OSError):
                # a broken pool never heals: evict it so the next
                # campaign spawns fresh (the engine's recovery ladder
                # handles *this* campaign)
                _discard_pool(workers)
                raise
            finally:
                # best-effort memory release: idle workers would
                # otherwise hold this campaign's backend + chunks until
                # the next campaign reaches them.  Fire-and-forget; the
                # shared queue does not guarantee every worker takes
                # one, and a worker already on a newer campaign ignores
                # it (token guard).
                if _pool_registry.get(max(1, workers)) is pool:
                    for _ in range(pool._max_workers):
                        try:
                            pool.submit(_persistent_worker_release, token)
                        except RuntimeError:  # pragma: no cover - shutdown
                            break
        finally:
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - already gone
                pass

    pool = ProcessPoolExecutor(
        max_workers=n_workers,
        mp_context=multiprocessing.get_context("spawn"),
        initializer=_process_worker_init,
        initargs=(payload,))

    def submit(i: int):
        return pool.submit(_process_worker_run, i)

    return _run_pool(pool, submit, len(chunks), _window(n_workers),
                     account_indexed, start, timeout=timeout)
