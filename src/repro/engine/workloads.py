"""Engine backends for the RSN, security, GPGPU and slicing workloads.

These complete the port started in :mod:`repro.engine.backends`: every
fault-effect campaign in the toolkit — dependability *and* security,
gate level to instruction level — now runs through
:func:`repro.engine.core.run_campaign`, so all of them inherit chunked
parallel execution, seeded sampling, Wilson early stop and streaming
CampaignDb persistence.  Kept separate from ``backends`` so process-pool
workers for the original four workloads do not pay these modules'
import cost.

All backends here follow the shared contract: ``run_batch`` is pure
with respect to prepared state, ``prepare()`` is idempotent, prepared
state is dropped on pickling (workers rebuild it), and per-point
randomness is derived from ``(seed, point index)`` so results are
byte-identical at any worker count and executor choice.

:class:`SlicingBackend` additionally exercises the engine's point-filter
stage: its no-activation / no-path skip rules run once against the
golden pass and resolve doomed injections as first-class ``masked``
outcomes without simulating them.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from ..circuit.levelize import fanout_cone
from ..circuit.netlist import Circuit
from ..faults.models import StuckAtFault
from .core import Injection
from .executors import chunk_seed

DETECTED = "detected"
UNDETECTED = "undetected"

#: Skip-rule tags carried in ``Injection.detail`` by filter stages.
SKIP_NO_ACTIVATION = "no_activation"
SKIP_NO_PATH = "no_path"
SKIP_DEAD_FLOP = "dead_flop"


def point_seed(seed: int, index: int) -> int:
    """Per-point RNG seed: chunk-size independent, worker independent."""
    return chunk_seed(seed, index)


# ----------------------------------------------------------------------
# RSN test / diagnosis
# ----------------------------------------------------------------------
class RsnDiagnosisBackend:
    """Per-fault signature campaigns on reconfigurable scan networks.

    Points are RSN faults (``SibStuck`` / ``MuxSelStuck`` /
    ``CellStuck``); each is injected into a fresh network from
    ``factory`` and driven through the golden-planned test, and the TDO
    stream becomes its signature.  Outcome is ``detected`` when the
    signature differs from the golden one — the quantity both
    ``coverage`` and ``build_signature_table`` are built from; the
    signature itself rides in ``detail`` for diagnosis.

    ``factory`` must be picklable for the process executor (a
    module-level function or ``functools.partial`` of one — not a
    lambda; unpicklable factories fall back to threads with a logged
    reason).
    """

    name = "rsn-diagnosis"
    fault_model = "rsn-structural"

    def __init__(self, factory: Callable[[], Any], faults: Sequence[Any],
                 test: Any) -> None:
        self.factory = factory
        self.faults = list(faults)
        self.test = test
        self.circuit_name = factory().name
        self.workload = f"rsn-test[{test.name}]"
        self._golden: tuple[int, ...] | None = None

    def enumerate_points(self) -> Sequence[Any]:
        return self.faults

    def prepare(self) -> None:
        if self._golden is None:  # idempotent: re-run per worker process
            self._golden = self._signature(None)

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_golden"] = None  # workers re-run the golden test
        return state

    def _signature(self, fault: Any | None) -> tuple[int, ...]:
        from ..rsn.test_gen import apply_test

        network = self.factory()
        network.reset()
        if fault is not None:
            network.inject(fault)
        return tuple(apply_test(network, self.test))

    @property
    def golden_signature(self) -> tuple[int, ...]:
        self.prepare()
        return self._golden

    def run_batch(self, points: Sequence[Any]) -> list[Injection]:
        out: list[Injection] = []
        for fault in points:
            signature = self._signature(fault)
            outcome = (DETECTED if signature != self._golden
                       else UNDETECTED)
            out.append(Injection(point=fault, location=fault.describe(),
                                 cycle=0, outcome=outcome, detail=signature))
        return out


# ----------------------------------------------------------------------
# laser fault injection
# ----------------------------------------------------------------------
class LaserFiBackend:
    """Laser-shot campaigns on a register floorplan.

    Points are ``(index, LaserShot)`` pairs; each shot is evaluated with
    its own jitter seed derived from ``(seed, index)``, so the same
    campaign reproduces shot for shot on any executor.  With a
    ``target`` cell the outcomes are the repeatability split of a
    targeted attack (``exact_hit`` / ``collateral`` / ``miss``);
    without one they classify the upset multiplicity (``single_bit`` /
    ``multi_bit`` / ``no_flip``) — the shot-grid sensitivity-map view.
    The flipped cell list rides in ``detail``.
    """

    name = "laser-fi"
    fault_model = "laser"

    def __init__(self, floorplan: Any, shots: Sequence[Any],
                 target: str | None = None, seed: int = 0,
                 jitter_um: float = 0.15) -> None:
        self.floorplan = floorplan
        self.shots = list(shots)
        self.target = target
        self.seed = seed
        self.jitter_um = jitter_um
        self.circuit_name = (f"floorplan-{floorplan.technology}"
                             f"[{len(floorplan.cells)} cells]")
        self.workload = (f"laser[{len(self.shots)} shots"
                         + (f", target {target}]" if target else "]"))

    def enumerate_points(self) -> Sequence[tuple[int, Any]]:
        return list(enumerate(self.shots))

    def prepare(self) -> None:  # shots are self-contained
        return None

    def run_batch(self, points: Sequence[tuple[int, Any]]) -> list[Injection]:
        from ..security.laser import fire  # lazy: keeps worker imports lean

        out: list[Injection] = []
        for index, shot in points:
            outcome_obj = fire(self.floorplan, shot,
                               jitter_um=self.jitter_um,
                               seed=self.seed * 100_003 + index)
            flipped = outcome_obj.flipped
            if self.target is not None:
                if not flipped or self.target not in flipped:
                    outcome = "miss"
                elif outcome_obj.single_bit:
                    outcome = "exact_hit"
                else:
                    outcome = "collateral"
            else:
                if not flipped:
                    outcome = "no_flip"
                else:
                    outcome = "single_bit" if outcome_obj.single_bit \
                        else "multi_bit"
            out.append(Injection(
                point=(index, shot),
                location=f"({shot.x_um:.2f},{shot.y_um:.2f})um",
                cycle=index, outcome=outcome, detail=list(flipped)))
        return out


# ----------------------------------------------------------------------
# side-channel trace collection
# ----------------------------------------------------------------------
class ScaTraceBackend:
    """Power-trace collection campaigns over an instrumented cipher.

    Points are ``(index, group, plaintext)`` triples; each encryption
    runs on an independent per-trace cipher obtained via the optional
    ``cipher.fork(seed)`` protocol (masked implementations draw a fresh
    mask stream per trace; stateless ciphers may return ``self``), so
    batches are pure and trace values are identical on every executor.
    ``group`` labels the TVLA population (``fixed`` / ``random``) or
    plain ``collected`` traces; the ``(cycles, power)`` observables ride
    in ``detail`` for CPA/TVLA to consume.
    """

    name = "sca-trace"
    fault_model = "side-channel"

    def __init__(self, cipher: Any, points: Sequence[tuple[int, str, bytes]],
                 seed: int = 0) -> None:
        self.cipher = cipher
        self.points = list(points)
        self.seed = seed
        self.circuit_name = type(cipher).__name__
        self.workload = f"sca[{len(self.points)} traces]"

    def enumerate_points(self) -> Sequence[tuple[int, str, bytes]]:
        return self.points

    def prepare(self) -> None:  # ciphers carry their own key schedule
        return None

    def run_batch(self,
                  points: Sequence[tuple[int, str, bytes]]) -> list[Injection]:
        out: list[Injection] = []
        for index, group, plaintext in points:
            fork = getattr(self.cipher, "fork", None)
            cipher = (fork(point_seed(self.seed, index))
                      if fork is not None else self.cipher)
            _ct, trace = cipher.encrypt(plaintext)
            out.append(Injection(
                point=(index, group, plaintext), location=f"trace{index}",
                cycle=index, outcome=group,
                detail=(trace.cycles, list(trace.power))))
        return out


# ----------------------------------------------------------------------
# GPGPU SEU sweeps
# ----------------------------------------------------------------------
class GpgpuSeuBackend:
    """Pipeline-register SEUs on a SIMT kernel ([25]/[40] campaigns).

    Points are ``(index, PipeRegFault)`` pairs; each run boots a fresh
    :class:`repro.gpgpu.simt.SimtCore`, injects one transient and
    compares the output region against the golden run (``masked`` /
    ``sdc``).  The golden outputs are rebuilt per worker in
    ``prepare()`` and never shipped.
    """

    name = "gpgpu-seu"
    fault_model = "seu"

    def __init__(self, kernel: Sequence[Any], inputs: Sequence[int],
                 faults: Sequence[Any], label: str = "kernel",
                 n_warps: int = 2, warp_size: int = 8) -> None:
        self.kernel = list(kernel)
        self.inputs = list(inputs)
        self.faults = list(faults)
        self.n_warps = n_warps
        self.warp_size = warp_size
        self.circuit_name = f"simt-{label}"
        self.workload = f"gpgpu-seu[{len(self.faults)} transients]"
        self._golden: list[int] | None = None
        self._golden_issues: int = 0

    def enumerate_points(self) -> Sequence[tuple[int, Any]]:
        return list(enumerate(self.faults))

    def prepare(self) -> None:
        if self._golden is None:  # idempotent: re-run per worker process
            self._golden, self._golden_issues = self._run([])

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_golden"] = None  # workers re-run the golden kernel
        state["_golden_issues"] = 0
        return state

    def _run(self, faults: list[Any]) -> tuple[list[int], int]:
        from ..gpgpu.apps import _run

        return _run(self.kernel, self.inputs, faults,
                    n_warps=self.n_warps, warp_size=self.warp_size)

    @property
    def golden_issues(self) -> int:
        self.prepare()
        return self._golden_issues

    def run_batch(self, points: Sequence[tuple[int, Any]]) -> list[Injection]:
        out: list[Injection] = []
        for index, fault in points:
            observed, _ = self._run([fault])
            outcome = "masked" if observed == self._golden else "sdc"
            out.append(Injection(
                point=(index, fault),
                location=f"w{fault.warp}.l{fault.lane}.b{fault.bit}",
                cycle=fault.at_issue, outcome=outcome))
        return out


# ----------------------------------------------------------------------
# dynamic-slicing FI campaigns (the first point-filter user)
# ----------------------------------------------------------------------
class SlicingBackend:
    """Gate-level (fault, cycle) campaigns with dynamic-slicing skips.

    Points are ``(fault, cycle)`` pairs classified by
    :func:`repro.safety.slicing._simulate_injection` against the golden
    trace.  With ``use_filter=True`` the two slicing skip rules run in
    the engine's point-filter stage: *no structural path* (the static
    fan-out cone reaches no observable — masked for every cycle) and
    *no activation* (the golden value at the fault site already equals
    the forced value at that cycle — machines identical, masked).  Both
    are provably lossless, so filtered campaigns classify byte-identical
    to unfiltered ones while skipping most of the simulation cost.
    """

    name = "slicing"
    fault_model = "stuck-at"

    def __init__(self, circuit: Circuit, faults: Sequence[StuckAtFault],
                 stimuli: Sequence[Mapping[str, int]],
                 cycles: Sequence[int] | None = None,
                 use_filter: bool = True) -> None:
        self.circuit = circuit
        self.circuit_name = circuit.name
        self.faults = list(faults)
        self.stimuli = list(stimuli)
        self.cycles = list(cycles if cycles is not None
                           else range(len(self.stimuli)))
        self.use_filter = use_filter
        self.workload = (f"slicing[{len(self.stimuli)} cycles, "
                         f"{'sliced' if use_filter else 'naive'}]")
        self._golden: tuple[list, list] | None = None

    def enumerate_points(self) -> Sequence[tuple[StuckAtFault, int]]:
        return [(fault, cyc) for fault in self.faults for cyc in self.cycles]

    def prepare(self) -> None:
        if self._golden is None:  # idempotent: re-run per worker process
            from ..safety.slicing import _golden_states

            self._golden = _golden_states(self.circuit, self.stimuli)

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_golden"] = None  # workers re-run the golden pass
        return state

    def filter_points(self, points: Sequence[tuple[StuckAtFault, int]]
                      ) -> tuple[list, list[Injection]]:
        """The slicing skip rules, engine-side (runs after prepare())."""
        if not self.use_filter:
            return list(points), []
        _states, values = self._golden
        observables = set(self.circuit.outputs)
        reach_cache: dict[str, bool] = {}

        def reaches_out(net: str) -> bool:
            if net not in reach_cache:
                cone = fanout_cone(self.circuit, [net], through_flops=True)
                reach_cache[net] = bool(cone & observables)
            return reach_cache[net]

        kept: list[tuple[StuckAtFault, int]] = []
        skipped: list[Injection] = []
        for fault, cyc in points:
            line = fault.line
            if not reaches_out(line.net):
                skipped.append(Injection(
                    point=(fault, cyc), location=fault.describe(), cycle=cyc,
                    outcome="masked", detail=SKIP_NO_PATH))
            elif (values[cyc].get(line.net, 0) & 1) == fault.value:
                skipped.append(Injection(
                    point=(fault, cyc), location=fault.describe(), cycle=cyc,
                    outcome="masked", detail=SKIP_NO_ACTIVATION))
            else:
                kept.append((fault, cyc))
        return kept, skipped

    def run_batch(self, points: Sequence[tuple[StuckAtFault, int]]
                  ) -> list[Injection]:
        from ..safety.slicing import _simulate_injection

        states, values = self._golden
        out: list[Injection] = []
        for fault, cyc in points:
            cls = _simulate_injection(self.circuit, fault, cyc, self.stimuli,
                                      values, states)
            out.append(Injection(point=(fault, cyc),
                                 location=fault.describe(), cycle=cyc,
                                 outcome=cls))
        return out
