"""Engine backends for the RSN, security, GPGPU and slicing workloads.

These complete the port started in :mod:`repro.engine.backends`: every
fault-effect campaign in the toolkit — dependability *and* security,
gate level to instruction level — now runs through
:func:`repro.engine.core.run_campaign`, so all of them inherit chunked
parallel execution, seeded sampling, Wilson early stop and streaming
CampaignDb persistence.  Kept separate from ``backends`` so process-pool
workers for the original four workloads do not pay these modules'
import cost.

All backends here follow the shared contract: ``run_batch`` is pure
with respect to prepared state, ``prepare()`` is idempotent, prepared
state is dropped on pickling (workers rebuild it), and per-point
randomness is derived from ``(seed, point index)`` so results are
byte-identical at any worker count and executor choice.

:class:`SlicingBackend` additionally exercises the engine's point-filter
stage: its no-activation / no-path skip rules run once against the
golden pass and resolve doomed injections as first-class ``masked``
outcomes without simulating them.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from ..circuit.levelize import fanout_cone
from ..circuit.netlist import Circuit
from ..faults.models import StuckAtFault
from . import lanes
from .core import Injection
from .executors import chunk_seed
from .lanes import DEFAULT_LANE_WIDTH

DETECTED = "detected"
UNDETECTED = "undetected"

#: Skip-rule tags carried in ``Injection.detail`` by filter stages.
SKIP_NO_ACTIVATION = "no_activation"
SKIP_NO_PATH = "no_path"
SKIP_DEAD_FLOP = "dead_flop"


def point_seed(seed: int, index: int) -> int:
    """Per-point RNG seed: chunk-size independent, worker independent."""
    return chunk_seed(seed, index)


# ----------------------------------------------------------------------
# RSN test / diagnosis
# ----------------------------------------------------------------------
class RsnDiagnosisBackend:
    """Per-fault signature campaigns on reconfigurable scan networks.

    Points are RSN faults (``SibStuck`` / ``MuxSelStuck`` /
    ``CellStuck``); each is injected into a fresh network from
    ``factory`` and driven through the golden-planned test, and the TDO
    stream becomes its signature.  Outcome is ``detected`` when the
    signature differs from the golden one — the quantity both
    ``coverage`` and ``build_signature_table`` are built from; the
    signature itself rides in ``detail`` for diagnosis.

    ``factory`` must be picklable for the process executor (a
    module-level function or ``functools.partial`` of one — not a
    lambda; unpicklable factories fall back to threads with a logged
    reason).
    """

    name = "rsn-diagnosis"
    fault_model = "rsn-structural"

    def __init__(self, factory: Callable[[], Any], faults: Sequence[Any],
                 test: Any) -> None:
        self.factory = factory
        self.faults = list(faults)
        self.test = test
        self.circuit_name = factory().name
        self.workload = f"rsn-test[{test.name}]"
        self._golden: tuple[int, ...] | None = None

    def enumerate_points(self) -> Sequence[Any]:
        return self.faults

    def prepare(self) -> None:
        if self._golden is None:  # idempotent: re-run per worker process
            self._golden = self._signature(None)

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_golden"] = None  # workers re-run the golden test
        return state

    def _signature(self, fault: Any | None) -> tuple[int, ...]:
        from ..rsn.test_gen import apply_test

        network = self.factory()
        network.reset()
        if fault is not None:
            network.inject(fault)
        return tuple(apply_test(network, self.test))

    @property
    def golden_signature(self) -> tuple[int, ...]:
        self.prepare()
        return self._golden

    def run_batch(self, points: Sequence[Any]) -> list[Injection]:
        out: list[Injection] = []
        for fault in points:
            signature = self._signature(fault)
            outcome = (DETECTED if signature != self._golden
                       else UNDETECTED)
            out.append(Injection(point=fault, location=fault.describe(),
                                 cycle=0, outcome=outcome, detail=signature))
        return out


# ----------------------------------------------------------------------
# laser fault injection
# ----------------------------------------------------------------------
class LaserFiBackend:
    """Laser-shot campaigns on a register floorplan.

    Points are ``(index, LaserShot)`` pairs; each shot is evaluated with
    its own jitter seed derived from ``(seed, index)``, so the same
    campaign reproduces shot for shot on any executor.  With a
    ``target`` cell the outcomes are the repeatability split of a
    targeted attack (``exact_hit`` / ``collateral`` / ``miss``);
    without one they classify the upset multiplicity (``single_bit`` /
    ``multi_bit`` / ``no_flip``) — the shot-grid sensitivity-map view.
    The flipped cell list rides in ``detail``.
    """

    name = "laser-fi"
    fault_model = "laser"

    def __init__(self, floorplan: Any, shots: Sequence[Any],
                 target: str | None = None, seed: int = 0,
                 jitter_um: float = 0.15) -> None:
        self.floorplan = floorplan
        self.shots = list(shots)
        self.target = target
        self.seed = seed
        self.jitter_um = jitter_um
        self.circuit_name = (f"floorplan-{floorplan.technology}"
                             f"[{len(floorplan.cells)} cells]")
        self.workload = (f"laser[{len(self.shots)} shots"
                         + (f", target {target}]" if target else "]"))

    def enumerate_points(self) -> Sequence[tuple[int, Any]]:
        return list(enumerate(self.shots))

    def prepare(self) -> None:  # shots are self-contained
        return None

    def run_batch(self, points: Sequence[tuple[int, Any]]) -> list[Injection]:
        from ..security.laser import fire  # lazy: keeps worker imports lean

        out: list[Injection] = []
        for index, shot in points:
            outcome_obj = fire(self.floorplan, shot,
                               jitter_um=self.jitter_um,
                               seed=self.seed * 100_003 + index)
            flipped = outcome_obj.flipped
            if self.target is not None:
                if not flipped or self.target not in flipped:
                    outcome = "miss"
                elif outcome_obj.single_bit:
                    outcome = "exact_hit"
                else:
                    outcome = "collateral"
            else:
                if not flipped:
                    outcome = "no_flip"
                else:
                    outcome = "single_bit" if outcome_obj.single_bit \
                        else "multi_bit"
            out.append(Injection(
                point=(index, shot),
                location=f"({shot.x_um:.2f},{shot.y_um:.2f})um",
                cycle=index, outcome=outcome, detail=list(flipped)))
        return out


# ----------------------------------------------------------------------
# side-channel trace collection
# ----------------------------------------------------------------------
class ScaTraceBackend:
    """Power-trace collection campaigns over an instrumented cipher.

    Points are ``(index, group, plaintext)`` triples; each encryption
    runs on an independent per-trace cipher obtained via the optional
    ``cipher.fork(seed)`` protocol (masked implementations draw a fresh
    mask stream per trace; stateless ciphers may return ``self``), so
    batches are pure and trace values are identical on every executor.
    ``group`` labels the TVLA population (``fixed`` / ``random``) or
    plain ``collected`` traces; the ``(cycles, power)`` observables ride
    in ``detail`` for CPA/TVLA to consume.
    """

    name = "sca-trace"
    fault_model = "side-channel"

    def __init__(self, cipher: Any, points: Sequence[tuple[int, str, bytes]],
                 seed: int = 0) -> None:
        self.cipher = cipher
        self.points = list(points)
        self.seed = seed
        self.circuit_name = type(cipher).__name__
        self.workload = f"sca[{len(self.points)} traces]"

    def enumerate_points(self) -> Sequence[tuple[int, str, bytes]]:
        return self.points

    def prepare(self) -> None:  # ciphers carry their own key schedule
        return None

    def run_batch(self,
                  points: Sequence[tuple[int, str, bytes]]) -> list[Injection]:
        out: list[Injection] = []
        for index, group, plaintext in points:
            fork = getattr(self.cipher, "fork", None)
            cipher = (fork(point_seed(self.seed, index))
                      if fork is not None else self.cipher)
            _ct, trace = cipher.encrypt(plaintext)
            out.append(Injection(
                point=(index, group, plaintext), location=f"trace{index}",
                cycle=index, outcome=group,
                detail=(trace.cycles, list(trace.power))))
        return out


# ----------------------------------------------------------------------
# GPGPU SEU sweeps
# ----------------------------------------------------------------------
class GpgpuSeuBackend:
    """Pipeline-register SEUs on a SIMT kernel ([25]/[40] campaigns).

    Points are ``(index, PipeRegFault)`` pairs; each run boots a fresh
    :class:`repro.gpgpu.simt.SimtCore`, injects one transient and
    compares the output region against the golden run (``masked`` /
    ``sdc``).  The golden outputs are rebuilt per worker in
    ``prepare()`` and never shipped.
    """

    name = "gpgpu-seu"
    fault_model = "seu"

    def __init__(self, kernel: Sequence[Any], inputs: Sequence[int],
                 faults: Sequence[Any], label: str = "kernel",
                 n_warps: int = 2, warp_size: int = 8,
                 lane_width: int = DEFAULT_LANE_WIDTH) -> None:
        self.kernel = list(kernel)
        self.inputs = list(inputs)
        self.faults = list(faults)
        self.n_warps = n_warps
        self.warp_size = warp_size
        self.lane_width = max(1, lane_width)
        self.circuit_name = f"simt-{label}"
        self.workload = f"gpgpu-seu[{len(self.faults)} transients]"
        self._golden: list[int] | None = None
        self._golden_issues: int = 0

    def enumerate_points(self) -> Sequence[tuple[int, Any]]:
        return list(enumerate(self.faults))

    def prepare(self) -> None:
        if self._golden is None:  # idempotent: re-run per worker process
            self._golden, self._golden_issues = self._run([])

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_golden"] = None  # workers re-run the golden kernel
        state["_golden_issues"] = 0
        return state

    def _run(self, faults: list[Any]) -> tuple[list[int], int]:
        from ..gpgpu.apps import _run

        return _run(self.kernel, self.inputs, faults,
                    n_warps=self.n_warps, warp_size=self.warp_size)

    @property
    def golden_issues(self) -> int:
        self.prepare()
        return self._golden_issues

    def run_batch(self, points: Sequence[tuple[int, Any]]) -> list[Injection]:
        if self.lane_width > 1:
            outcomes = self._forked_outcomes(points)
        else:
            outcomes = []
            for _index, fault in points:
                observed, _ = self._run([fault])
                outcomes.append("masked" if observed == self._golden
                                else "sdc")
        return [Injection(
            point=(index, fault),
            location=f"w{fault.warp}.l{fault.lane}.b{fault.bit}",
            cycle=fault.at_issue, outcome=outcome)
            for (index, fault), outcome in zip(points, outcomes)]

    def _boot(self):
        from ..gpgpu.simt import SimtCore

        core = SimtCore(self.kernel, n_warps=self.n_warps,
                        warp_size=self.warp_size)
        for i, value in enumerate(self.inputs):
            core.memory[i] = value
        return core

    def _forked_outcomes(self, points: Sequence[tuple[int, Any]]
                         ) -> list[str]:
        """The SIMT flavour of lane packing: the fault-free prefix is
        executed once per batch.  Points are visited in ``at_issue``
        order while a single golden core advances; at each injection
        slot the core is forked, the transient injected, and only the
        *remainder* of the kernel replayed.  A :class:`PipeRegFault`
        cannot act before its slot, so the fork is bit-exact with a
        from-scratch faulty run (the ``rr`` continuation keeps the warp
        schedule aligned)."""
        from ..gpgpu.simt import MAX_ISSUES

        order = sorted(range(len(points)), key=lambda i: points[i][1].at_issue)
        outcomes: list[str | None] = [None] * len(points)
        core = self._boot()
        rr = 0
        issued = 0
        alive = True
        budget = MAX_ISSUES  # the per-point path's implicit run cap
        for i in order:
            _index, fault = points[i]
            target = min(fault.at_issue, budget)
            while alive and issued < target:
                stepped = core.run(max_issues=target - issued, rr=rr)
                issued += stepped
                if stepped:
                    rr = (core.schedule_trace[-1] + 1) % len(core.warps)
                if issued < target:
                    alive = False  # kernel finished before the slot
            if not alive and issued <= fault.at_issue:
                outcomes[i] = "masked"  # fault slot never issues
                continue
            clone = core.fork()
            clone.inject(fault)
            clone.run(max_issues=budget - issued, rr=rr)
            observed = clone.memory[128:128 + clone.n_threads]
            outcomes[i] = "masked" if observed == self._golden else "sdc"
        return outcomes  # type: ignore[return-value]


# ----------------------------------------------------------------------
# dynamic-slicing FI campaigns (the first point-filter user)
# ----------------------------------------------------------------------
class SlicingBackend:
    """Gate-level (fault, cycle) campaigns with dynamic-slicing skips.

    Points are ``(fault, cycle)`` pairs classified by
    :func:`repro.safety.slicing._simulate_injection` against the golden
    trace.  With ``use_filter=True`` the two slicing skip rules run in
    the engine's point-filter stage: *no structural path* (the static
    fan-out cone reaches no observable — masked for every cycle) and
    *no activation* (the golden value at the fault site already equals
    the forced value at that cycle — machines identical, masked).  Both
    are provably lossless, so filtered campaigns classify byte-identical
    to unfiltered ones while skipping most of the simulation cost.

    ``lane_width`` > 1 packs the multi-cycle propagation of surviving
    state perturbations into bit lanes; widths above 64 ride the vector
    tier (``lane_backing`` picks ``"int"``, ``"soa"`` or ``"ndarray"``,
    auto-resolved when ``None`` — see :mod:`repro.sim.vector`).
    """

    name = "slicing"
    fault_model = "stuck-at"

    def __init__(self, circuit: Circuit, faults: Sequence[StuckAtFault],
                 stimuli: Sequence[Mapping[str, int]],
                 cycles: Sequence[int] | None = None,
                 use_filter: bool = True,
                 lane_width: int = DEFAULT_LANE_WIDTH,
                 lane_backing: str | None = None) -> None:
        self.circuit = circuit
        self.circuit_name = circuit.name
        self.faults = list(faults)
        self.stimuli = list(stimuli)
        self.cycles = list(cycles if cycles is not None
                           else range(len(self.stimuli)))
        if any(cyc < 0 for cyc in self.cycles):
            # a negative cycle would silently wrap into golden-run data
            # (differently per lane width) — reject it up front so every
            # path behaves identically
            raise ValueError(f"negative injection cycles in {self.cycles}")
        self.use_filter = use_filter
        self.lane_width = lanes.resolve_lane_width(lane_width)
        self.lane_backing = lane_backing
        self.workload = (f"slicing[{len(self.stimuli)} cycles, "
                         f"{'sliced' if use_filter else 'naive'}]")
        self._golden: tuple[list, list] | None = None
        self._lane_ctx: lanes.LaneContext | None = None

    def enumerate_points(self) -> Sequence[tuple[StuckAtFault, int]]:
        return [(fault, cyc) for fault in self.faults for cyc in self.cycles]

    def prepare(self) -> None:
        if self._golden is None:  # idempotent: re-run per worker process
            from ..safety.slicing import _golden_states

            self._golden = _golden_states(self.circuit, self.stimuli)
        if self.lane_width > 1 and self._lane_ctx is None:
            # the lane context replicates the golden pass already held in
            # ``_golden`` — no second golden simulation
            self._lane_ctx = lanes.build_context(
                self.circuit, self.stimuli, self.lane_width,
                golden=self._golden,
                backing=getattr(self, "lane_backing", None))

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_golden"] = None  # workers re-run the golden pass
        state["_lane_ctx"] = None
        return state

    def filter_points(self, points: Sequence[tuple[StuckAtFault, int]]
                      ) -> tuple[list, list[Injection]]:
        """The slicing skip rules, engine-side (runs after prepare())."""
        if not self.use_filter:
            return list(points), []
        _states, values = self._golden
        observables = set(self.circuit.outputs)
        reach_cache: dict[str, bool] = {}

        def reaches_out(net: str) -> bool:
            if net not in reach_cache:
                cone = fanout_cone(self.circuit, [net], through_flops=True)
                reach_cache[net] = bool(cone & observables)
            return reach_cache[net]

        kept: list[tuple[StuckAtFault, int]] = []
        skipped: list[Injection] = []
        for fault, cyc in points:
            line = fault.line
            if not reaches_out(line.net):
                skipped.append(Injection(
                    point=(fault, cyc), location=fault.describe(), cycle=cyc,
                    outcome="masked", detail=SKIP_NO_PATH))
            elif (values[cyc].get(line.net, 0) & 1) == fault.value:
                skipped.append(Injection(
                    point=(fault, cyc), location=fault.describe(), cycle=cyc,
                    outcome="masked", detail=SKIP_NO_ACTIVATION))
            else:
                kept.append((fault, cyc))
        return kept, skipped

    def run_batch(self, points: Sequence[tuple[StuckAtFault, int]]
                  ) -> list[Injection]:
        if self.lane_width > 1:
            return self._run_batch_packed(points)
        from ..safety.slicing import _simulate_injection

        states, values = self._golden
        out: list[Injection] = []
        for fault, cyc in points:
            cls = _simulate_injection(self.circuit, fault, cyc, self.stimuli,
                                      values, states)
            out.append(Injection(point=(fault, cyc),
                                 location=fault.describe(), cycle=cyc,
                                 outcome=cls))
        return out

    def _inject_once(self, fault: StuckAtFault,
                     cyc: int) -> tuple[bool, dict[str, int]]:
        """The injection cycle of one transient, against golden data.

        Returns ``(failed_now, state_delta)``: whether a primary output
        already differs in the injection cycle, and the per-flop XOR the
        fault leaves on the state entering ``cyc + 1`` — exactly the
        first loop iteration of :func:`repro.safety.slicing
        ._simulate_injection` (including the flop-branch ``__flopD__``
        capture rule)."""
        from ..sim.fault_sim import faulty_values

        _states, values = self._golden
        good = values[cyc]
        vals = faulty_values(self.circuit, fault, good, 1)
        failed_now = any(vals.get(po, 0) != good.get(po, 0)
                         for po in self.circuit.outputs)
        if failed_now:
            return True, {}
        line = fault.line
        delta: dict[str, int] = {}
        for q, flop in self.circuit.flops.items():
            if not line.is_stem and line.sink == q:
                captured = vals.get(f"__flopD__{q}", vals[flop.d])
            else:
                captured = vals[flop.d]
            delta[q] = (captured ^ good[flop.d]) & 1
        return False, delta

    def _run_batch_packed(self, points: Sequence[tuple[StuckAtFault, int]]
                          ) -> list[Injection]:
        """Lane-packed path: each point's injection cycle runs 1-wide
        (fault forcing differs per lane), but the multi-cycle
        propagation of the surviving state perturbations — the dominant
        cost — is shared across up to ``lane_width`` lanes."""
        outcomes = lanes.packed_dispatch(
            points, self.lane_width, lambda p: p[1],
            lambda group: lanes.transient_outcomes(
                self._lane_ctx, group, self._inject_once))
        return [Injection(point=(fault, cyc), location=fault.describe(),
                          cycle=cyc, outcome=outcomes[i])
                for i, (fault, cyc) in enumerate(points)]


# ----------------------------------------------------------------------
# round batching: several campaigns behind one engine run
# ----------------------------------------------------------------------
class CompositeBackend:
    """Several independent backends fused into one campaign.

    Multi-round facades (``gpgpu.encoding_style_study`` comparing two
    kernel encodings, ``rsn.diagnostic_test`` evaluating a window of
    candidate tests) used to run one engine campaign per round, paying
    campaign setup — and, on the process executor, backend shipping —
    once per round.  A composite fuses the rounds: points are
    ``(tag, sub_point)`` pairs, ``run_batch`` routes each chunk slice to
    its part (so per-part lane packing still applies within a chunk),
    and callers recover per-round results by filtering injections on the
    tag (``Injection.location`` is prefixed with it for DB readability).

    Parts must follow the usual contract (pure ``run_batch``, idempotent
    ``prepare``, prepared state dropped on pickling); the composite then
    inherits picklability and process-executor support for free.
    """

    def __init__(self, parts: Sequence[tuple[str, Any]]) -> None:
        if not parts:
            raise ValueError("CompositeBackend needs at least one part")
        self.parts = list(parts)
        self._by_tag = dict(self.parts)
        if len(self._by_tag) != len(self.parts):
            raise ValueError("CompositeBackend tags must be unique")
        first = self.parts[0][1]
        self.name = f"composite[{first.name} x{len(self.parts)}]"
        self.circuit_name = first.circuit_name
        self.fault_model = first.fault_model
        self.workload = f"{len(self.parts)} rounds batched"

    @property
    def lane_width(self) -> int:
        return max(int(getattr(b, "lane_width", 1) or 1)
                   for _, b in self.parts)

    def part(self, tag: str) -> Any:
        return self._by_tag[tag]

    def enumerate_points(self) -> Sequence[tuple[str, Any]]:
        return [(tag, point) for tag, backend in self.parts
                for point in backend.enumerate_points()]

    def prepare(self) -> None:
        for _, backend in self.parts:
            backend.prepare()

    def run_batch(self, points: Sequence[tuple[str, Any]]) -> list[Injection]:
        out: list[Injection | None] = [None] * len(points)
        groups: dict[str, list[tuple[int, Any]]] = {}
        for pos, (tag, point) in enumerate(points):
            groups.setdefault(tag, []).append((pos, point))
        for tag, items in groups.items():
            batch = self._by_tag[tag].run_batch([p for _, p in items])
            for (pos, _), inj in zip(items, batch):
                out[pos] = Injection(
                    point=(tag, inj.point),
                    location=f"{tag}:{inj.location}",
                    cycle=inj.cycle, outcome=inj.outcome, detail=inj.detail)
        return out  # type: ignore[return-value]
