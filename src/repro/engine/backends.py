"""Injection backends: adapters from each FI workload onto the engine.

Each backend owns the workload-specific physics (how to build the golden
reference, how to inject one point, how to classify the outcome) and
exposes the uniform :class:`repro.engine.core.InjectionBackend` surface.
``run_batch`` implementations are pure with respect to backend state
after :meth:`prepare`, so the engine may execute them from worker
threads in any order.  Every backend also pickles cleanly before
``prepare()`` (circuits drop their memoized caches on serialization)
and ``prepare()`` is idempotent, which is what the process-pool
executor needs: the backend ships to each worker once and rebuilds its
golden runs and caches locally.

Since the engine grew chunk-level fault tolerance, purity and
idempotence carry one more obligation: execution is **at-least-once**.
A chunk whose worker died, hung past ``chunk_timeout`` or raised is
re-executed — possibly in the parent process, after another
``prepare()`` — and a checkpointed campaign re-executes any chunk whose
record never committed.  A backend must therefore produce the same
injections for the same points on every execution and must not
accumulate observable side effects across ``run_batch`` calls; all
backends below satisfy this by construction (their mutable state is
golden-run caches keyed only by the immutable workload).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ..autosoc.apps import Application
from ..autosoc.fi import SocInjection, run_injection
from ..autosoc.soc import SocConfig
from ..circuit.netlist import Circuit
from ..faults.models import StuckAtFault
from ..sim.fault_sim import _batch_goods, _batched_detection, _observe_nets
from ..sim.logic import mask_of, simulate
from ..soft_error.seu import _golden_run, inject_seu
from . import lanes
from .core import Injection
from .lanes import DEFAULT_LANE_WIDTH

DETECTED = "detected"
UNDETECTED = "undetected"


class PpsfpBackend:
    """Gate-level stuck-at PPSFP over one or more packed pattern batches.

    Injection points are the faults; each fault is simulated against the
    pattern batches in order with fault dropping (first detecting batch
    wins).  The fan-out-cone cache on the circuit makes repeat visits to
    a fault site O(1), so batches after the first cost a dict lookup per
    surviving fault instead of a BFS plus a topo-order scan.

    Large pattern payloads ship via the engine's temp-file channel: when
    the pickled batches cross :data:`repro.engine.executors
    .SHIP_BYTES_MIN`, ``__getstate__`` parks them once in a
    :class:`~repro.engine.executors.ShippedBlob` and every subsequent
    pickle of the backend (probe, campaign payload, thread fallback)
    carries only the file reference; workers reload them lazily in
    ``prepare()``.
    """

    name = "ppsfp"
    fault_model = "stuck-at"

    def __init__(
        self,
        circuit: Circuit,
        faults: Sequence[StuckAtFault],
        batches: Sequence[tuple[Mapping[str, int], int]],
        state: Mapping[str, int] | None = None,
        full_scan: bool = True,
        drop_detected: bool = True,
    ) -> None:
        self.circuit = circuit
        self.circuit_name = circuit.name
        self.workload = f"ppsfp[{len(batches)} batches]"
        self.faults = list(faults)
        self.batches = list(batches)
        self.state = state
        self.full_scan = full_scan
        self.drop_detected = drop_detected
        self._goods: list[tuple[dict[str, int], int]] = []
        self._offsets: list[int] = []
        self._observe: tuple[str, ...] = ()
        self._batches_blob = None  # ShippedBlob once patterns ship
        self._ship_memo: tuple | None = None  # (src, len, blob) — parent only
        self.n_patterns = sum(n for _, n in batches)

    def enumerate_points(self) -> Sequence[StuckAtFault]:
        return self.faults

    def prepare(self) -> None:
        if self.batches is None:  # shipped patterns: load once per worker
            self.batches = self._batches_blob.load()
        if self._goods:  # idempotent: re-run per process-pool worker
            return
        self._goods, self._offsets, _ = _batch_goods(
            self.circuit, self.batches, self.state)
        self._observe = _observe_nets(self.circuit, self.full_scan)

    def __getstate__(self) -> dict:
        """Prepared state (good-machine values, observe list) is dropped:
        process-pool workers rebuild it via their own ``prepare()``.

        Pattern batches past the shipping threshold are parked in a temp
        file once and replaced by the blob reference.  The ship verdict
        (including "too small") is memoized against the batches object
        and its length, so repeated pickles of the same backend — probe,
        payload, thread fallback — neither re-measure nor re-park, while
        replacing or resizing ``batches`` re-ships fresh patterns
        instead of forwarding a stale snapshot.  (In-place mutation of
        an individual pattern dict is not detected — batches are
        treated as frozen once a campaign has pickled them.)"""
        from .executors import ship_if_large

        state = self.__dict__.copy()
        state["_goods"] = []
        state["_offsets"] = []
        state["_observe"] = ()
        state["_ship_memo"] = None  # parent-side memo never travels
        batches = self.batches
        if batches is None:  # unprepared clone: forward the blob as-is
            return state
        memo = self._ship_memo
        if memo is not None and memo[0] is batches and memo[1] == len(batches):
            blob = memo[2]
        else:
            blob, _ = ship_if_large(batches)
            self._ship_memo = (batches, len(batches), blob)
            self._batches_blob = blob
        if blob is not None:
            state["batches"] = None
            state["_batches_blob"] = blob
        else:
            state["_batches_blob"] = None
        return state

    def run_batch(self, points: Sequence[StuckAtFault]) -> list[Injection]:
        out: list[Injection] = []
        for fault in points:
            acc = _batched_detection(self.circuit, fault, self._goods,
                                     self._offsets, self._observe,
                                     self.drop_detected)
            out.append(Injection(
                point=fault, location=fault.describe(), cycle=0,
                outcome=DETECTED if acc else UNDETECTED, detail=acc))
        return out


class SeuBackend:
    """Sequential SEU flop flips over a stimulus workload.

    Points are ``(flop, cycle)`` pairs; outcomes are the classic
    masked / latent / failure split of :func:`repro.soft_error.seu
    .inject_seu` against a shared golden run.

    ``lane_width`` > 1 (the default) packs that many points into one
    sequential run via :mod:`repro.engine.lanes`: bit-lane *i* carries
    fault instance *i* and outcomes come back per lane by XOR against
    the golden trace — byte-identical to the per-point path, ~W× fewer
    circuit evaluations.  ``lane_width=1`` keeps the per-point
    :func:`inject_seu` path for parity testing.  Widths above 64 run on
    the vector tier: packed big ints by default, the level-batched SoA
    kernel via ``lane_backing="soa"`` (auto from ~1k lanes on circuits
    with wide levels), or per-net numpy block arrays via
    ``lane_backing="ndarray"`` — see :mod:`repro.sim.vector` for the
    crossovers and overrides.  Without numpy they degrade to 64 with a
    logged warning.  Outcomes are byte-identical at every width and
    backing.

    ``skip_dead_flops=True`` opts into the engine's point-filter stage:
    a flop whose single-cycle fan-out cone reaches no primary output and
    no flop D input cannot change the observable trace or the next
    state, so every injection on it is provably ``masked`` — the same
    lossless skip-rule machinery :class:`repro.engine.workloads
    .SlicingBackend` uses, reused for dead state bits.  Verdicts are
    cached per flop on the backend, so repeated campaigns on the same
    instance never recompute a fan-out cone.
    """

    name = "seu"
    fault_model = "seu"

    def __init__(
        self,
        circuit: Circuit,
        stimuli: Sequence[Mapping[str, int]],
        targets: Sequence[str] | None = None,
        cycles: Sequence[int] | None = None,
        skip_dead_flops: bool = False,
        lane_width: int = DEFAULT_LANE_WIDTH,
        lane_backing: str | None = None,
    ) -> None:
        if not circuit.flops:
            raise ValueError(f"{circuit.name} has no flops to upset")
        self.circuit = circuit
        self.circuit_name = circuit.name
        self.stimuli = list(stimuli)
        self.workload = f"seu[{len(self.stimuli)} cycles]"
        self.targets = list(targets if targets is not None else circuit.flops)
        self.cycles = list(cycles if cycles is not None
                           else range(len(self.stimuli)))
        self.skip_dead_flops = skip_dead_flops
        self.use_filter = skip_dead_flops  # engine filter-stage gate
        # resolved here, before the engine chunks points, so parent and
        # process-pool workers agree on the effective width
        self.lane_width = lanes.resolve_lane_width(lane_width)
        self.lane_backing = lane_backing
        self._golden: tuple | None = None
        self._lane_ctx: lanes.LaneContext | None = None
        self._dead_flops: dict[str, bool] = {}  # flop -> cone verdict cache

    def enumerate_points(self) -> Sequence[tuple[str, int]]:
        return [(flop, cyc) for flop in self.targets for cyc in self.cycles]

    def filter_points(self, points: Sequence[tuple[str, int]]
                      ) -> tuple[list, list[Injection]]:
        """Resolve injections on dead flops as ``masked`` without
        simulating them (only when ``skip_dead_flops`` is set)."""
        if not self.skip_dead_flops:
            return list(points), []
        from ..circuit.levelize import fanout_cone
        from .workloads import SKIP_DEAD_FLOP

        observables = set(self.circuit.outputs)
        d_nets = {flop.d for flop in self.circuit.flops.values()}
        dead = self._dead_flops  # structural verdicts survive campaigns

        def is_dead(flop: str) -> bool:
            if flop not in dead:
                cone = fanout_cone(self.circuit, [flop], through_flops=False)
                dead[flop] = not (cone & observables) and not (cone & d_nets)
            return dead[flop]

        kept, skipped = [], []
        for flop, cyc in points:
            if is_dead(flop):
                skipped.append(Injection(point=(flop, cyc), location=flop,
                                         cycle=cyc, outcome="masked",
                                         detail=SKIP_DEAD_FLOP))
            else:
                kept.append((flop, cyc))
        return kept, skipped

    def prepare(self) -> None:
        if self._golden is None:  # idempotent: re-run per worker process
            self._golden = _golden_run(self.circuit, self.stimuli)
        if self.lane_width > 1 and self._lane_ctx is None:
            self._lane_ctx = lanes.build_context(
                self.circuit, self.stimuli, self.lane_width,
                backing=getattr(self, "lane_backing", None))

    def __getstate__(self) -> dict:
        """The golden trace is dropped: workers re-run it in ``prepare``."""
        state = self.__dict__.copy()
        state["_golden"] = None
        state["_lane_ctx"] = None
        return state

    def run_batch(self, points: Sequence[tuple[str, int]]) -> list[Injection]:
        if self.lane_width > 1:
            return self._run_batch_packed(points)
        out: list[Injection] = []
        for flop, cyc in points:
            outcome = inject_seu(self.circuit, self.stimuli, flop, cyc,
                                 self._golden)
            out.append(Injection(point=(flop, cyc), location=flop,
                                 cycle=cyc, outcome=outcome))
        return out

    def _run_batch_packed(self, points: Sequence[tuple[str, int]]
                          ) -> list[Injection]:
        """Lane-packed path: up to ``lane_width`` points per sequential
        run (grouped by cycle, emitted in point order)."""
        outcomes = lanes.packed_dispatch(
            points, self.lane_width, lambda p: p[1],
            lambda group: lanes.seu_outcomes(self._lane_ctx, group))
        return [Injection(point=(flop, cyc), location=flop, cycle=cyc,
                          outcome=outcomes[i])
                for i, (flop, cyc) in enumerate(points)]


class SafetyBackend:
    """ISO 26262 classification of stuck-at faults under packed patterns.

    Points are the faults; outcomes are the ISO fault-class values
    (``safe`` / ``detected`` / ``residual`` / ``latent_detected``),
    computed by :func:`repro.safety.campaign.classify_injection_values`
    on mission vs detection output groups.
    """

    name = "safety"
    fault_model = "stuck-at"

    def __init__(
        self,
        circuit: Circuit,
        faults: Sequence[StuckAtFault],
        mission_outputs: Sequence[str],
        detection_outputs: Sequence[str],
        patterns: Mapping[str, int],
        n_patterns: int,
        state: Mapping[str, int] | None = None,
    ) -> None:
        self.circuit = circuit
        self.circuit_name = circuit.name
        self.workload = f"safety[{n_patterns} patterns]"
        self.faults = list(faults)
        self.mission_outputs = list(mission_outputs)
        self.detection_outputs = list(detection_outputs)
        self.patterns = patterns
        self.n_patterns = n_patterns
        self.state = state
        self._good: dict[str, int] = {}
        self._mask = mask_of(n_patterns)

    def enumerate_points(self) -> Sequence[StuckAtFault]:
        return self.faults

    def prepare(self) -> None:
        if not self._good:  # idempotent: re-run per worker process
            self._good = simulate(self.circuit, self.patterns,
                                  self.n_patterns, self.state)

    def __getstate__(self) -> dict:
        """Good-machine values are dropped: workers re-simulate them."""
        state = self.__dict__.copy()
        state["_good"] = {}
        return state

    def run_batch(self, points: Sequence[StuckAtFault]) -> list[Injection]:
        from ..safety.campaign import classify_injection_values
        from ..sim.fault_sim import faulty_values

        out: list[Injection] = []
        for fault in points:
            bad = faulty_values(self.circuit, fault, self._good, self._mask)
            cls = classify_injection_values(
                self._good, bad, self._mask,
                self.mission_outputs, self.detection_outputs)
            out.append(Injection(point=fault, location=fault.describe(),
                                 cycle=0, outcome=cls.value))
        return out


class SocBackend:
    """SoC-level CPU/RAM transients on AutoSoC runs.

    Points are :class:`repro.autosoc.fi.SocInjection` descriptors; each
    batch boots a fresh SoC per injection (runs are independent, so
    batches parallelise trivially).  ``detail`` carries the lockstep
    detection latency when one was observed.
    """

    name = "autosoc"
    fault_model = "transient"

    def __init__(
        self,
        app: Application,
        config: SocConfig,
        injections: Sequence[SocInjection],
    ) -> None:
        self.app = app
        self.config = config
        self.circuit_name = f"autosoc-{config.value}"
        self.workload = app.name
        self.injections = list(injections)

    def enumerate_points(self) -> Sequence[SocInjection]:
        return self.injections

    def prepare(self) -> None:  # golden runs live inside run_injection
        return None

    def run_batch(self, points: Sequence[SocInjection]) -> list[Injection]:
        out: list[Injection] = []
        for injection in points:
            outcome, latency = run_injection(self.app, self.config, injection)
            if injection.kind == "cpu":
                location = f"cpu:{injection.unit}.bit{injection.bit}"
            else:
                location = f"ram:{injection.ram_offset}.bit{injection.bit}"
            out.append(Injection(point=injection, location=location,
                                 cycle=injection.cycle, outcome=outcome,
                                 detail=latency))
        return out


def ppsfp_result(report, n_patterns: int) -> Any:
    """Rebuild a :class:`repro.sim.fault_sim.FaultSimResult` from a
    PPSFP engine report (detection masks ride in ``detail``)."""
    from ..sim.fault_sim import FaultSimResult

    result = FaultSimResult(n_patterns=n_patterns)
    for inj in report.injections:
        if inj.outcome == DETECTED:
            result.detected[inj.point] = inj.detail
        else:
            result.undetected.append(inj.point)
    return result
