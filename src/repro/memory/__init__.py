"""FinFET SRAM quality/reliability: devices, cells, defects, march, DFT."""

from .defects import (
    DEVICE_SITES,
    DefectKind,
    InjectedDefect,
    inject_defect,
    seed_defect_population,
)
from .dft import (
    CombinedTestReport,
    CurrentSensorConfig,
    DftResult,
    combined_test,
    current_sweep,
)
from .finfet import (
    DefectType,
    FinFet,
    classify_severity,
    pristine,
    with_bent_fin,
    with_fin_crack,
    with_gate_damage,
)
from .march import (
    ALGORITHMS,
    MARCH_C_MINUS,
    MARCH_SS,
    MATS_PLUS,
    MarchElement,
    MarchResult,
    MarchTest,
    Order,
    march_coverage,
    run_march,
)
from .sram import SramArray, SramCell

__all__ = [
    "ALGORITHMS",
    "CombinedTestReport",
    "CurrentSensorConfig",
    "DEVICE_SITES",
    "DefectKind",
    "DefectType",
    "DftResult",
    "FinFet",
    "InjectedDefect",
    "MARCH_C_MINUS",
    "MARCH_SS",
    "MATS_PLUS",
    "MarchElement",
    "MarchResult",
    "MarchTest",
    "Order",
    "SramArray",
    "SramCell",
    "classify_severity",
    "combined_test",
    "current_sweep",
    "inject_defect",
    "march_coverage",
    "pristine",
    "run_march",
    "seed_defect_population",
    "with_bent_fin",
    "with_fin_crack",
    "with_gate_damage",
]
