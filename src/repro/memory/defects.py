"""Defect injection into SRAM cells (III.E, [10][26][27]).

Maps physical defects — resistive opens/bridges and the FinFET-specific
fin cracks / bent fins — onto device-parameter perturbations of a 6T
cell.  The injection API returns the *expected severity class* so tests
and benches can check that march tests catch the hard class while the
current-sensor DFT catches the weak (hard-to-detect) class.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum

from .finfet import FinFet, with_bent_fin, with_fin_crack, with_gate_damage
from .sram import SramArray, SramCell


class DefectKind(str, Enum):
    FIN_CRACK_FULL = "fin_crack_full"       # hard: device loses most drive
    FIN_CRACK_PARTIAL = "fin_crack_partial" # weak: parametric drive loss
    BENT_FIN = "bent_fin"                   # weak: Vth shift + leakage
    RESISTIVE_OPEN = "resistive_open"       # hard or weak by resistance
    GATE_DAMAGE = "gate_damage"             # hard


DEVICE_SITES = ("pull_up_l", "pull_up_r", "pull_down_l", "pull_down_r",
                "pass_gate_l", "pass_gate_r")


@dataclass(frozen=True)
class InjectedDefect:
    """Record of one injected defect."""

    cell_name: str
    site: str
    kind: DefectKind
    severity: float
    expected_class: str  # "hard" | "weak"


def _open_as_crack(device: FinFet, resistance_ohm: float) -> tuple[FinFet, float]:
    """A resistive open in series with a device throttles its drive.

    I_eff = I_on / (1 + R/R0) with R0 the device's own on-resistance
    scale; we fold that into an equivalent integrity loss.
    """
    r0 = 5_000.0
    factor = 1.0 / (1.0 + resistance_ohm / r0)
    severity = 1.0 - factor
    return with_fin_crack(device, min(0.999, max(1e-3, severity))), severity


def inject_defect(
    cell: SramCell,
    site: str,
    kind: DefectKind,
    magnitude: float,
) -> InjectedDefect:
    """Inject one defect into ``cell`` at ``site``.

    ``magnitude`` meaning per kind: crack/bend severity in (0, 1], or the
    open resistance in ohms for RESISTIVE_OPEN.
    """
    if site not in DEVICE_SITES:
        raise ValueError(f"unknown device site {site!r}")
    device: FinFet = getattr(cell, site)
    if kind is DefectKind.FIN_CRACK_FULL:
        new_dev = with_fin_crack(device, max(0.8, magnitude))
        expected = "hard"
    elif kind is DefectKind.FIN_CRACK_PARTIAL:
        new_dev = with_fin_crack(device, min(0.45, max(0.05, magnitude)))
        expected = "weak"
    elif kind is DefectKind.BENT_FIN:
        new_dev = with_bent_fin(device, min(1.0, max(0.05, magnitude)))
        expected = "weak"
    elif kind is DefectKind.GATE_DAMAGE:
        new_dev = with_gate_damage(device)
        expected = "hard"
    else:  # RESISTIVE_OPEN
        new_dev, severity = _open_as_crack(device, magnitude)
        expected = "hard" if severity > 0.65 else "weak"
    setattr(cell, site, new_dev)
    return InjectedDefect(cell.name, site, kind, magnitude, expected)


def seed_defect_population(
    array: SramArray,
    n_hard: int = 4,
    n_weak: int = 6,
    seed: int = 0,
) -> list[InjectedDefect]:
    """Scatter a mixed hard/weak defect population over an array.

    Hard defects go preferentially into pull-downs and pass-gates (where
    drive loss breaks reads); weak ones are spread over all sites.
    Deterministic per seed; each cell receives at most one defect.
    """
    rng = random.Random(seed)
    coords = [(r, c) for r in range(array.rows) for c in range(array.cols)]
    rng.shuffle(coords)
    injected: list[InjectedDefect] = []
    hard_kinds = [DefectKind.FIN_CRACK_FULL, DefectKind.GATE_DAMAGE,
                  DefectKind.RESISTIVE_OPEN]
    weak_kinds = [DefectKind.FIN_CRACK_PARTIAL, DefectKind.BENT_FIN,
                  DefectKind.RESISTIVE_OPEN]
    idx = 0
    for _ in range(n_hard):
        row, col = coords[idx]
        idx += 1
        kind = rng.choice(hard_kinds)
        magnitude = 0.95 if kind is not DefectKind.RESISTIVE_OPEN \
            else rng.uniform(60_000, 200_000)
        site = rng.choice(("pull_down_l", "pull_down_r",
                           "pass_gate_l", "pass_gate_r"))
        injected.append(inject_defect(array.cell(row, col), site, kind, magnitude))
    # weak (parametric) defects land on the pass gates: the read stack is
    # pass-gate-limited (single fin vs the double-fin pull-down), so that
    # is where a partial defect actually moves the sensed current — the
    # [10]/[27] target population
    read_path_sites = ("pass_gate_l", "pass_gate_r")
    for _ in range(n_weak):
        row, col = coords[idx]
        idx += 1
        kind = rng.choice(weak_kinds)
        magnitude = rng.uniform(0.15, 0.4) if kind is not DefectKind.RESISTIVE_OPEN \
            else rng.uniform(1_500, 6_000)
        site = rng.choice(read_path_sites)
        injected.append(inject_defect(array.cell(row, col), site, kind, magnitude))
    return injected
