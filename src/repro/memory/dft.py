"""On-chip current-sensor DFT for hard-to-detect SRAM faults ([10][27]).

"To monitor the health status of an SRAM, we investigated efficient ways
to monitor the status of cells using on-chip current sensors.  The idea
is to compare the response of different cells with each other and from
there identify defective or weak cells."

The scheme: during a read, a sensor digitizes the cell's bit-line
current; each cell's reading is compared against a *reference* formed
from its neighbours (the paper's cell-vs-cell comparison, which cancels
global process/temperature shifts).  Cells deviating beyond a relative
threshold are flagged — catching parametric (weak) defects that never
fail a functional march test, "testing all defects simultaneously while
using a limited number of operations only" (one read sweep).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Sequence

from .march import MARCH_C_MINUS, MarchTest, run_march
from .sram import SramArray


@dataclass
class CurrentSensorConfig:
    """Sensor geometry and decision threshold."""

    deviation_threshold: float = 0.10  # flag if >10 % below neighbour median
    neighbourhood: int = 8             # cells per comparison group (per row)
    measurement_noise: float = 0.01    # 1-sigma relative sensor noise


@dataclass
class DftResult:
    """Cells flagged by the current-sensor sweep."""

    flagged: set[str] = field(default_factory=set)
    measurements: dict[str, float] = field(default_factory=dict)
    operations: int = 0

    def flags(self) -> list[str]:
        return sorted(self.flagged)


def current_sweep(array: SramArray, config: CurrentSensorConfig | None = None,
                  seed: int = 0) -> DftResult:
    """Two read sweeps (one per data polarity) with neighbour comparison.

    Measuring with the cell holding 0 exercises the left discharge stack,
    holding 1 the right one, so a defect on either side is observed.
    """
    import random as _random

    config = config or CurrentSensorConfig()
    rng = _random.Random(seed)
    result = DftResult()
    for polarity in (0, 1):
        for r in range(array.rows):
            row_cells = array.cells[r]
            for start in range(0, len(row_cells), config.neighbourhood):
                group = row_cells[start:start + config.neighbourhood]
                readings = {}
                for cell in group:
                    noise = 1.0 + rng.gauss(0.0, config.measurement_noise)
                    readings[cell.name] = cell.read_current(polarity) * noise
                    result.operations += 1
                if len(readings) < 3:
                    continue
                median = statistics.median(readings.values())
                if median <= 0:
                    continue
                for name, value in readings.items():
                    ratio = value / median
                    result.measurements[name] = min(
                        ratio, result.measurements.get(name, ratio))
                    if value < median * (1.0 - config.deviation_threshold):
                        result.flagged.add(name)
    return result


@dataclass
class CombinedTestReport:
    """March vs march+DFT coverage per defect class (the E12 table)."""

    march_name: str
    hard_total: int
    hard_by_march: int
    weak_total: int
    weak_by_march: int
    weak_by_dft: int
    march_operations: int
    dft_operations: int

    @property
    def march_coverage_hard(self) -> float:
        return self.hard_by_march / self.hard_total if self.hard_total else 1.0

    @property
    def march_coverage_weak(self) -> float:
        return self.weak_by_march / self.weak_total if self.weak_total else 1.0

    @property
    def combined_coverage_weak(self) -> float:
        if not self.weak_total:
            return 1.0
        return min(1.0, (self.weak_by_march + self.weak_by_dft) / self.weak_total)


def combined_test(
    array: SramArray,
    hard_cells: Sequence[str],
    weak_cells: Sequence[str],
    march: MarchTest = MARCH_C_MINUS,
    config: CurrentSensorConfig | None = None,
    seed: int = 0,
) -> CombinedTestReport:
    """Run march then the DFT sweep; report per-class coverage."""
    march_result = run_march(array, march)
    failing = march_result.failing_cells()
    dft_result = current_sweep(array, config, seed)
    weak_set = set(weak_cells)
    return CombinedTestReport(
        march_name=march.name,
        hard_total=len(hard_cells),
        hard_by_march=sum(1 for c in hard_cells if c in failing),
        weak_total=len(weak_cells),
        weak_by_march=sum(1 for c in weak_cells if c in failing),
        weak_by_dft=sum(1 for c in weak_set if c in dft_result.flagged),
        march_operations=march_result.operations,
        dft_operations=dft_result.operations,
    )
