"""6T FinFET SRAM cell and array models.

Each cell owns six devices (2 pull-up, 2 pull-down, 2 pass-gate).  Cell
health is summarized by three margins derived from device drive ratios:

* **read stability** — pull-down vs pass-gate strength (β-ratio): too low
  and a read flips the cell;
* **write margin** — pass-gate vs pull-up strength (γ-ratio): too low and
  writes fail to flip the cell;
* **read current** — the bit-line discharge current the sense amp (and
  the current-sensor DFT of [10]/[27]) sees.

Defects perturb individual devices, margins shift, and cell behaviour
degrades in the standard ways: stuck-at, transition fault, read-
destructive, slow/weak read.  Behaviour is fully deterministic given the
cell's margin state, which keeps march-test results reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .finfet import FinFet, pristine


@dataclass
class SramCell:
    """One 6T cell: devices, margins and stored state."""

    name: str
    pull_up_l: FinFet
    pull_up_r: FinFet
    pull_down_l: FinFet
    pull_down_r: FinFet
    pass_gate_l: FinFet
    pass_gate_r: FinFet
    value: int = 0
    vdd: float = 0.8

    # margin thresholds (relative to nominal ratios)
    READ_STABILITY_MIN = 0.55
    WRITE_MARGIN_MIN = 0.45
    READ_CURRENT_FAIL = 0.30   # below this fraction of nominal: read fails

    @classmethod
    def fresh(cls, name: str) -> "SramCell":
        """A defect-free cell with standard 1-2-1 fin sizing."""
        return cls(
            name=name,
            pull_up_l=pristine(f"{name}.pul", 1),
            pull_up_r=pristine(f"{name}.pur", 1),
            pull_down_l=pristine(f"{name}.pdl", 2),
            pull_down_r=pristine(f"{name}.pdr", 2),
            pass_gate_l=pristine(f"{name}.pgl", 1),
            pass_gate_r=pristine(f"{name}.pgr", 1),
        )

    # ------------------------------------------------------------------
    # electrical summary
    # ------------------------------------------------------------------
    def beta_ratio(self) -> float:
        """Pull-down / pass-gate drive (read stability driver), worst side."""
        left = self._ratio(self.pull_down_l, self.pass_gate_l)
        right = self._ratio(self.pull_down_r, self.pass_gate_r)
        return min(left, right)

    def gamma_ratio(self) -> float:
        """Pass-gate / pull-up drive (write-ability driver), worst side."""
        left = self._ratio(self.pass_gate_l, self.pull_up_l)
        right = self._ratio(self.pass_gate_r, self.pull_up_r)
        return min(left, right)

    def _ratio(self, num: FinFet, den: FinFet) -> float:
        d = den.on_current(self.vdd)
        return num.on_current(self.vdd) / d if d > 0 else 10.0

    def read_current(self, value: int | None = None) -> float:
        """Bit-line discharge current (series pass-gate + pull-down).

        Reading value 0 discharges through the left stack, value 1 through
        the right stack (the node holding 0 sinks its bit line).  The
        series stack is limited by its weaker device.
        """
        if value is None:
            value = self.value
        side = (self.pull_down_l, self.pass_gate_l) if value == 0 else \
            (self.pull_down_r, self.pass_gate_r)
        return min(d.on_current(self.vdd) for d in side)

    @staticmethod
    def nominal_read_current(vdd: float = 0.8) -> float:
        ref = SramCell.fresh("ref")
        ref.vdd = vdd
        return ref.read_current()

    # relative margins (1.0 = nominal)
    def read_stability(self) -> float:
        nominal = SramCell.fresh("n").beta_ratio()
        return self.beta_ratio() / nominal if nominal else 0.0

    def write_margin(self) -> float:
        nominal = SramCell.fresh("n").gamma_ratio()
        return self.gamma_ratio() / nominal if nominal else 0.0

    # ------------------------------------------------------------------
    # functional behaviour
    # ------------------------------------------------------------------
    def write(self, bit: int) -> bool:
        """Attempt a write; returns success (False models a write fault)."""
        if self.write_margin() < self.WRITE_MARGIN_MIN and bit != self.value:
            return False  # transition fault: cannot flip the cell
        self.value = bit & 1
        return True

    def read(self) -> int:
        """Read the cell.

        Two failure modes: a discharge stack too weak to beat the sense
        amp's precharge returns the *wrong* value (incomplete read), and
        an unstable cell flips during the access (read-destructive).
        """
        result = self.value
        nominal = self.nominal_read_current(self.vdd)
        if self.read_current(self.value) < self.READ_CURRENT_FAIL * nominal:
            result = 1 - self.value  # bit line fails to discharge
        if self.read_stability() < self.READ_STABILITY_MIN:
            self.value ^= 1  # read-destructive upset
        return result

    def is_functional_faulty(self) -> bool:
        """Would this cell fail a functional (march) test?"""
        nominal = self.nominal_read_current(self.vdd)
        weak_read = min(self.read_current(0), self.read_current(1)) \
            < self.READ_CURRENT_FAIL * nominal
        return (self.write_margin() < self.WRITE_MARGIN_MIN
                or self.read_stability() < self.READ_STABILITY_MIN
                or weak_read)

    def is_weak(self, current_threshold: float = 0.85) -> bool:
        """Parametrically degraded but functionally silent (DFT target)."""
        nominal = self.nominal_read_current(self.vdd)
        worst = min(self.read_current(0), self.read_current(1))
        return (not self.is_functional_faulty()
                and worst < current_threshold * nominal)


@dataclass
class SramArray:
    """A rows×cols array of cells with an access log for aging studies."""

    rows: int
    cols: int
    cells: list[list[SramCell]] = field(default_factory=list)
    access_histogram: dict[int, int] = field(default_factory=dict)

    @classmethod
    def build(cls, rows: int, cols: int, seed: int | None = None,
              vth_sigma: float = 0.0) -> "SramArray":
        """Construct an array; optional Vth mismatch via ``vth_sigma``."""
        from dataclasses import replace as _replace

        rng = random.Random(seed)
        array = cls(rows, cols)
        for r in range(rows):
            row = []
            for c in range(cols):
                cell = SramCell.fresh(f"c{r}_{c}")
                if vth_sigma > 0:
                    # FinFet is frozen: rebuild each device with jittered Vth
                    for dev_name in ("pull_up_l", "pull_up_r", "pull_down_l",
                                     "pull_down_r", "pass_gate_l", "pass_gate_r"):
                        dev: FinFet = getattr(cell, dev_name)
                        jitter = rng.gauss(0, vth_sigma)
                        setattr(cell, dev_name, _replace(dev, vth=dev.vth + jitter))
                row.append(cell)
            array.cells.append(row)
        return array

    def cell(self, row: int, col: int) -> SramCell:
        return self.cells[row][col]

    def write(self, row: int, col: int, bit: int) -> bool:
        self.access_histogram[row] = self.access_histogram.get(row, 0) + 1
        return self.cells[row][col].write(bit)

    def read(self, row: int, col: int) -> int:
        self.access_histogram[row] = self.access_histogram.get(row, 0) + 1
        return self.cells[row][col].read()

    def all_cells(self):
        for row in self.cells:
            yield from row

    def faulty_cells(self) -> list[str]:
        return [c.name for c in self.all_cells() if c.is_functional_faulty()]

    def weak_cells(self, current_threshold: float = 0.85) -> list[str]:
        return [c.name for c in self.all_cells() if c.is_weak(current_threshold)]
