"""Simplified FinFET device model with manufacturing-defect variants.

Substitution for the paper's TCAD methodology (III.E): "Each defect is
modelled by altering the physical structure of FinFET devices to include
unwanted characteristics, such as cracks on the channel or bended fins.
These devices are then simulated for electrical analysis."  The closed
form here keeps exactly the properties the downstream test experiments
need — per-defect drive-current loss, threshold shift and leakage — on a
square-law I–V:

    I_on = k · n_fins_eff · (Vgs − Vth_eff)²   (saturation)

A *cracked fin* removes part of a fin's drive; a *bent fin* disturbs the
gate wrap, shifting Vth and raising leakage.  The quantitative knobs are
chosen so full cracks produce hard functional faults while partial
cracks/bends land in the "hard-to-detect" parametric band of [26]/[27].
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum


class DefectType(str, Enum):
    NONE = "none"
    FIN_CRACK = "fin_crack"          # fractional loss of fin drive
    BENT_FIN = "bent_fin"            # Vth shift + leakage increase
    GATE_OXIDE_DAMAGE = "gate_oxide" # large Vth shift, drive collapse


@dataclass(frozen=True)
class FinFet:
    """One FinFET with ``n_fins`` parallel fins."""

    name: str
    n_fins: int = 2
    vth: float = 0.35
    k_per_fin: float = 1.0e-4      # A/V² per fin
    leakage: float = 1.0e-9        # A at Vgs=0
    fin_integrity: float = 1.0     # 1.0 = pristine, 0 = all fins broken
    defect: DefectType = DefectType.NONE

    def effective_fins(self) -> float:
        return self.n_fins * max(0.0, min(1.0, self.fin_integrity))

    def on_current(self, vdd: float = 0.8) -> float:
        """Saturation drive current at Vgs=Vdd."""
        overdrive = vdd - self.vth
        if overdrive <= 0:
            return 0.0
        return self.k_per_fin * self.effective_fins() * overdrive ** 2

    def off_current(self) -> float:
        return self.leakage

    def drive_ratio_vs(self, reference: "FinFet", vdd: float = 0.8) -> float:
        """This device's drive as a fraction of a reference device's."""
        ref = reference.on_current(vdd)
        return self.on_current(vdd) / ref if ref > 0 else 0.0


def pristine(name: str, n_fins: int = 2) -> FinFet:
    return FinFet(name=name, n_fins=n_fins)


def with_fin_crack(device: FinFet, severity: float) -> FinFet:
    """Crack ``severity`` ∈ (0, 1]: fraction of fin cross-section lost."""
    if not 0 < severity <= 1:
        raise ValueError("severity must be in (0, 1]")
    return replace(device,
                   fin_integrity=device.fin_integrity * (1 - severity),
                   defect=DefectType.FIN_CRACK)


def with_bent_fin(device: FinFet, tilt: float) -> FinFet:
    """Bend ``tilt`` ∈ (0, 1]: gate-wrap degradation.

    Shifts Vth up by up to 150 mV and multiplies leakage by up to 100×
    at full tilt — the parametric signature TCAD reports for bent fins.
    """
    if not 0 < tilt <= 1:
        raise ValueError("tilt must be in (0, 1]")
    return replace(device,
                   vth=device.vth + 0.15 * tilt,
                   leakage=device.leakage * (1 + 99 * tilt),
                   defect=DefectType.BENT_FIN)


def with_gate_damage(device: FinFet) -> FinFet:
    """Gate-oxide damage: device barely turns on (hard fault)."""
    return replace(device, vth=device.vth + 0.4,
                   fin_integrity=device.fin_integrity * 0.3,
                   defect=DefectType.GATE_OXIDE_DAMAGE)


def classify_severity(device: FinFet, reference: FinFet,
                      vdd: float = 0.8,
                      hard_threshold: float = 0.35,
                      weak_threshold: float = 0.85) -> str:
    """Bin a defective device: 'hard' / 'weak' / 'benign'.

    The drive-ratio bins mirror the [26] observation that only gross
    defects become functional (march-detectable) faults; the rest need
    parametric DFT.
    """
    ratio = device.drive_ratio_vs(reference, vdd)
    if ratio < hard_threshold:
        return "hard"
    if ratio < weak_threshold:
        return "weak"
    return "benign"
