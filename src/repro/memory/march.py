"""March-test engine for SRAM arrays.

March tests are the industry-standard functional memory tests: a
sequence of *march elements*, each an address sweep (up ⇑, down ⇓, or
either ⇕) applying read/write operations per cell.  Implemented
algorithms:

* **MATS+**       — ⇕(w0) ⇑(r0,w1) ⇓(r1,w0): address faults + SAFs
* **March C-**    — the classic 10N test for SAF/TF/CF
* **March SS**    — a longer sequence with read-after-read elements that
  also catches some read-destructive (stability) faults

The engine reports every observed mismatch with its (element, address)
location — the raw material for fault localization — and the bench
compares its coverage per defect class against the DFT scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Sequence

from .sram import SramArray


class Order(str, Enum):
    UP = "up"
    DOWN = "down"
    ANY = "any"


@dataclass(frozen=True)
class MarchElement:
    """One address sweep with an operation list like ('r0', 'w1')."""

    order: Order
    operations: tuple[str, ...]

    def __post_init__(self) -> None:
        for op in self.operations:
            if op[0] not in "rw" or op[1:] not in ("0", "1"):
                raise ValueError(f"bad march operation {op!r}")


@dataclass(frozen=True)
class MarchTest:
    """A named sequence of march elements."""

    name: str
    elements: tuple[MarchElement, ...]

    @property
    def complexity(self) -> int:
        """Operations per cell (the xN in '10N' nomenclature)."""
        return sum(len(e.operations) for e in self.elements)


def _el(order: Order, *ops: str) -> MarchElement:
    return MarchElement(order, tuple(ops))


MATS_PLUS = MarchTest("MATS+", (
    _el(Order.ANY, "w0"),
    _el(Order.UP, "r0", "w1"),
    _el(Order.DOWN, "r1", "w0"),
))

MARCH_C_MINUS = MarchTest("March C-", (
    _el(Order.ANY, "w0"),
    _el(Order.UP, "r0", "w1"),
    _el(Order.UP, "r1", "w0"),
    _el(Order.DOWN, "r0", "w1"),
    _el(Order.DOWN, "r1", "w0"),
    _el(Order.ANY, "r0"),
))

MARCH_SS = MarchTest("March SS", (
    _el(Order.ANY, "w0"),
    _el(Order.UP, "r0", "r0", "w0", "r0", "w1"),
    _el(Order.UP, "r1", "r1", "w1", "r1", "w0"),
    _el(Order.DOWN, "r0", "r0", "w0", "r0", "w1"),
    _el(Order.DOWN, "r1", "r1", "w1", "r1", "w0"),
    _el(Order.ANY, "r0"),
))

ALGORITHMS: dict[str, MarchTest] = {
    t.name: t for t in (MATS_PLUS, MARCH_C_MINUS, MARCH_SS)
}


@dataclass
class MarchResult:
    """Mismatches found by a march run."""

    test_name: str
    mismatches: list[tuple[int, int, int, str]] = field(default_factory=list)
    # (element index, row, col, operation)
    operations: int = 0

    @property
    def passed(self) -> bool:
        return not self.mismatches

    def failing_cells(self) -> set[str]:
        return {f"c{r}_{c}" for _e, r, c, _op in self.mismatches}


def run_march(array: SramArray, test: MarchTest) -> MarchResult:
    """Execute a march test on an array; collect read mismatches."""
    result = MarchResult(test.name)
    coords_up = [(r, c) for r in range(array.rows) for c in range(array.cols)]
    for e_idx, element in enumerate(test.elements):
        coords = coords_up if element.order is not Order.DOWN \
            else list(reversed(coords_up))
        for row, col in coords:
            for op in element.operations:
                expect = int(op[1])
                result.operations += 1
                if op[0] == "w":
                    array.write(row, col, expect)
                else:
                    got = array.read(row, col)
                    if got != expect:
                        result.mismatches.append((e_idx, row, col, op))
    return result


def march_coverage(
    array: SramArray,
    defect_cells: Sequence[str],
    test: MarchTest,
) -> tuple[float, MarchResult]:
    """Fraction of defective cells whose defects the march test exposes."""
    result = run_march(array, test)
    if not defect_cells:
        return 1.0, result
    failing = result.failing_cells()
    caught = sum(1 for name in defect_cells if name in failing)
    return caught / len(defect_cells), result
