"""E16 — FinFET SRAM PUF: simulation vs analytical model (III.F).

"We have developed a simulation framework and an analytical mathematical
model for FinFET SRAM PUFs in order to be able to investigate
reliability and entropy performance."  Rows: the metric scorecard per
technology, the model-vs-simulation comparison, and the fuzzy-extractor
key-failure outcome.
"""

from repro.core import format_table
from repro.puf import (
    FINFET_16NM,
    FuzzyExtractor,
    FuzzyExtractorConfig,
    PLANAR_28NM,
    SramPuf,
    key_failure_rate,
    make_population,
    predicted_intra_hd,
    scorecard,
)


def _experiment():
    cards = {}
    for tech in (FINFET_16NM, PLANAR_28NM):
        population = make_population(6, 768, tech, base_seed=1)
        cards[tech.name] = scorecard(population, n_readouts=6)

    model_rows = []
    for temp in (25.0, 85.0, -40.0):
        predicted = predicted_intra_hd(FINFET_16NM, temp)
        model_rows.append((f"{temp:+.0f} C", predicted))

    extractor = FuzzyExtractor(FuzzyExtractorConfig(key_nibbles=32,
                                                    repetition=5))
    puf = SramPuf(extractor.config.response_bits, FINFET_16NM, device_seed=42)
    key, helper = extractor.enroll(puf.reference_response(), secret_seed=7)
    failures = {
        temp: key_failure_rate(puf, helper, key, extractor, n_trials=20,
                               temp_c=temp)
        for temp in (25.0, 85.0)
    }
    return cards, model_rows, failures


def test_e16_puf(benchmark):
    cards, model_rows, failures = benchmark.pedantic(_experiment, rounds=1,
                                                     iterations=1)
    rows = []
    for name, card in cards.items():
        rows.append((name, f"{card.intra_hd_25c:.4f}",
                     f"{card.intra_hd_hot:.4f}", f"{card.inter_hd:.3f}",
                     f"{card.uniformity:.3f}", f"{card.min_entropy:.2f}"))
    print("\n" + format_table(
        ["technology", "intra-HD 25C", "intra-HD 85C", "inter-HD",
         "uniformity", "min-entropy"],
        rows, title="E16 — PUF scorecards"))
    finfet = cards["finfet_16nm"]
    print("analytical model intra-HD: "
          + ", ".join(f"{t}: {v:.4f}" for t, v in model_rows))
    print(f"key failure rate: " + ", ".join(
        f"{t:.0f}C: {v:.2f}" for t, v in failures.items()))

    # claim shape: uniqueness ~50%, reliability a few %, FinFET better
    # than planar, model matches simulation, keys reconstruct reliably
    assert 0.45 < finfet.inter_hd < 0.55
    assert finfet.intra_hd_25c < 0.05
    assert finfet.intra_hd_hot < cards["planar_28nm"].intra_hd_hot
    predicted_25 = model_rows[0][1]
    assert abs(predicted_25 - finfet.intra_hd_25c) < 0.02
    assert failures[25.0] == 0.0
    assert failures[85.0] < 0.2
