"""E19 — RIIF exchange and the community campaign database (IV.A).

"Extra-functional information, such as technology fault data,
environment-induced events rates, etc., must be generated, consumed and
exchanged transparently" (RIIF), and "RESCUE aims at generating and
providing to the community large databases with the results of fault
simulation campaigns".  The bench round-trips an AutoSoC reliability
model through the text format, bridges it into a FIT budget, and
aggregates a stored campaign.
"""

from repro.circuit import load
from repro.core import (
    CampaignDb,
    ComponentModel,
    FailureModeSpec,
    RiifDocument,
    SystemModel,
    emit_riif,
    format_table,
    parse_riif,
)
from repro.soft_error import random_workload, run_campaign


def _experiment():
    doc = RiifDocument()
    doc.components["sram_bank"] = ComponentModel(
        "sram_bank", {"bits": 65536, "derating": 0.2},
        [FailureModeSpec("seu", 32.8), FailureModeSpec("sefi", 1.2, True)])
    doc.components["cpu_flops"] = ComponentModel(
        "cpu_flops", {"bits": 4096, "derating": 0.35},
        [FailureModeSpec("seu", 2.05)])
    doc.systems["autosoc"] = SystemModel(
        "autosoc", [("l1", "sram_bank", 2), ("pipeline", "cpu_flops", 1)])

    text = emit_riif(doc)
    parsed = parse_riif(text)
    budget = parsed.to_fit_budget("autosoc", "ASIL-B")

    # a campaign produced by one "tool", stored for the community
    circuit = load("rand_seq")
    workload = random_workload(circuit, 10, seed=5)
    campaign = run_campaign(circuit, workload, sample=120, seed=6)
    with CampaignDb() as db:
        cid = db.create_campaign("seu-sample", circuit.name, "seu", "rand10")
        db.record_many(cid, [(inj.flop, inj.cycle, inj.outcome)
                             for inj in campaign.injections])
        summary = db.summary(cid)
        avf = db.failure_rate_by_location(cid)
    return text, parsed, budget, summary, avf


def test_e19_riif(benchmark):
    text, parsed, budget, summary, avf = benchmark.pedantic(
        _experiment, rounds=1, iterations=1)
    print(f"\nRIIF document: {len(text.splitlines())} lines, "
          f"{len(parsed.components)} component models")
    print(format_table(
        ["component", "bits", "raw FIT", "logic", "timing", "AVF",
         "prot", "eff FIT"],
        budget.rows(), title="E19 — budget built from exchanged RIIF"))
    print(f"system FIT {parsed.system_fit('autosoc'):.1f}; ASIL-B "
          f"{'PASS' if budget.meets_target else 'FAIL'}")
    print(f"stored campaign: {summary.total} injections, outcomes "
          f"{summary.outcomes}; {len(avf)} per-location AVF entries")

    # claim shape: exact round trip, consistent totals, queryable store
    assert emit_riif(parsed) == text
    assert parsed.system_fit("autosoc") == (32.8 + 1.2) * 2 + 2.05
    assert summary.total == 120
    assert avf
