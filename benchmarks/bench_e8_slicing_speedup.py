"""E8 — dynamic-slicing acceleration of FI campaigns ([49][51], III.D).

"Our work on dynamic slicing aims at pruned fault lists and smarter
injection to save some of these efforts."  Rows: simulations run,
injections skipped per rule, speedup — with the mandatory property that
the accelerated campaign classifies every injection identically.
"""

from repro.circuit import load
from repro.core import format_table
from repro.faults import collapse
from repro.safety import (
    run_naive_campaign,
    run_sliced_campaign,
    verify_equivalence,
)
from repro.soft_error import random_workload


def _experiment():
    circuit = load("rand_seq")
    faults, _ = collapse(circuit)
    workload = random_workload(circuit, 12, seed=21)
    subset = faults[:60]
    naive = run_naive_campaign(circuit, subset, workload)
    sliced = run_sliced_campaign(circuit, subset, workload)
    # second pass with the per-fault-site cone cache fully warm: the
    # shared PPSFP fast path must classify identically
    rewarm = run_sliced_campaign(circuit, subset, workload)
    return naive, sliced, rewarm


def test_e8_slicing_speedup(benchmark):
    naive, sliced, rewarm = benchmark.pedantic(_experiment, rounds=1,
                                               iterations=1)
    rows = [
        ("naive", naive.simulated, 0, 0, "1.00x"),
        ("dynamic slicing", sliced.simulated, sliced.skipped_no_activation,
         sliced.skipped_no_path, f"{sliced.speedup_estimate():.2f}x"),
    ]
    print("\n" + format_table(
        ["campaign", "simulations", "skipped (no activation)",
         "skipped (no path)", "speedup"],
        rows, title=f"E8 — FI acceleration ({naive.total} injections)"))
    print(f"classifications identical: "
          f"{verify_equivalence(naive, sliced)}; "
          f"skip fraction {sliced.skip_fraction:.0%}")

    # claim shape: lossless, with a material fraction of the work removed
    assert verify_equivalence(naive, sliced)
    assert sliced.simulated < naive.simulated
    assert sliced.skip_fraction > 0.25
    assert sliced.speedup_estimate() > 1.3
    # the cone cache is transparent: a warm-cache rerun is bit-identical
    assert verify_equivalence(sliced, rewarm)
