"""E2 — the FIT-budget overshoot (III.B headline numbers).

"Standard flip-flops and SRAM memories ... exhibit error rates of
hundreds of FITs [per Mbit].  Complex circuits using such cells can
easily overshoot the 10 FIT target mandated by the ISO 26262 for an
automotive ASIL D application."  The bench sweeps design sizes and finds
the crossover where the budget breaks, then shows ECC restoring it.
"""

from repro.core import format_table
from repro.soft_error import ComponentSER, FitBudget, RAW_FIT_PER_MBIT


def _sweep():
    rows = []
    crossover_bits = None
    for mbits in (0.01, 0.05, 0.1, 0.5, 1.0, 4.0, 16.0):
        bits = int(mbits * 1e6)
        plain = FitBudget("ASIL-D").add(ComponentSER(
            "sram", bits, "28nm", functional_derating=0.2))
        ecc = FitBudget("ASIL-D").add(ComponentSER(
            "sram", bits, "28nm", functional_derating=0.2, protected=True))
        rows.append((mbits, round(plain.total_effective_fit, 2),
                     "PASS" if plain.meets_target else "FAIL",
                     round(ecc.total_effective_fit, 3),
                     "PASS" if ecc.meets_target else "FAIL"))
        if crossover_bits is None and not plain.meets_target:
            crossover_bits = bits
    return rows, crossover_bits


def test_e2_fit_budget(benchmark):
    rows, crossover = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print("\n" + format_table(
        ["Mbit of state", "FIT (plain)", "ASIL-D", "FIT (ECC)", "ASIL-D "],
        rows, title="E2 — FIT vs ISO 26262 ASIL-D (10 FIT), 28nm"))
    print(f"raw technology rate: {RAW_FIT_PER_MBIT['28nm']} FIT/Mbit "
          f"(the 'hundreds of FITs' band); budget breaks at "
          f"~{crossover / 1e6:.2f} Mbit unprotected")

    # claim shape: hundreds of FIT/Mbit; sub-Mbit crossover; ECC fixes it
    assert 100 <= RAW_FIT_PER_MBIT["28nm"] <= 1000
    assert crossover is not None and crossover < 1_000_000
    assert all(row[4] == "PASS" for row in rows[:-1])  # ECC holds the line
