"""E3 — exhaustive vs statistical fault injection (III.B).

"[Exhaustive injection] is obviously ultimate in terms of accuracy but
very cumbersome ... The random fault injection method provides a
solution to avoid unreasonable costs while allowing for accuracy (or
statistical significance)."  Rows: sample size, campaign-cost fraction,
estimate error, confidence interval.
"""

from repro.circuit import load
from repro.core import format_table
from repro.soft_error import (
    adaptive_estimate,
    cost_accuracy_rows,
    random_workload,
    run_study,
)


def _study():
    circuit = load("rand_seq")
    workload = random_workload(circuit, 16, seed=7)
    study = run_study(circuit, workload,
                      sample_sizes=(20, 50, 100, 192), margin=0.05, seed=8)
    # the engine's statistically-adaptive alternative: stop when the
    # Wilson interval converges instead of fixing n in advance
    adaptive = adaptive_estimate(circuit, workload, margin=0.08, seed=8)
    return study, adaptive


def test_e3_statistical_fi(benchmark):
    study, adaptive = benchmark.pedantic(_study, rounds=1, iterations=1)
    print("\n" + format_table(
        ["n injections", "cost fraction", "estimate", "|error|",
         "95% CI", "CI covers truth"],
        cost_accuracy_rows(study),
        title=f"E3 — statistical FI (population {study.population}, "
              f"true rate {study.true_rate:.3f})"))
    print(f"Leveugle bound for 5% margin @95%: {study.recommended_n} "
          f"injections ({study.recommended_n / study.population:.0%} of "
          f"exhaustive)")
    print(f"engine early stop @8% margin: {adaptive.n_injections} injections "
          f"({adaptive.cost_fraction:.0%} of exhaustive), estimate "
          f"{adaptive.estimate:.3f} in "
          f"[{adaptive.ci_low:.3f}, {adaptive.ci_high:.3f}]")

    # claim shape: errors shrink with n; a fraction of the exhaustive cost
    # already delivers a covered, tight estimate
    errors = [p.abs_error for p in study.points]
    assert errors[-1] <= errors[0] + 1e-9
    assert study.recommended_n < study.population
    assert all(p.ci_contains_truth for p in study.points[-2:])
    # the adaptive campaign stops early and still brackets the truth
    assert adaptive.converged
    assert adaptive.n_injections < adaptive.population
    assert adaptive.ci_low <= study.true_rate <= adaptive.ci_high
