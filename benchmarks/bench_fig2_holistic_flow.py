"""F2 — regenerate Fig. 2: the holistic EDA flow on one design.

One netlist descends through quality (ATPG + coverage), reliability
(SEU campaign + FIT budget) and security (laser susceptibility of its
register file) stages that share artifacts — the cross-domain pipeline
the RESCUE project proposes instead of isolated point tools.
"""

from repro.atpg import generate_tests, random_tpg
from repro.circuit import load
from repro.core import Flow, Stage, format_table
from repro.faults import collapse
from repro.security import unlock_register_attack
from repro.sim import fault_simulate, pack_patterns
from repro.soft_error import ComponentSER, FitBudget, random_workload, run_campaign


def _make_flow() -> Flow:
    flow = Flow("holistic")
    flow.add_stage(Stage("netlist", (), ("circuit",),
                         lambda a: {"circuit": load("rand_seq")}, "quality"))

    def atpg(art):
        circuit = art["circuit"]
        faults, _ = collapse(circuit)
        rt = random_tpg(circuit, faults, max_patterns=128, seed=1)
        extra, untestable, _ab = generate_tests(circuit, rt.remaining)
        patterns = rt.patterns + extra
        packed = pack_patterns(patterns)
        sim = fault_simulate(circuit, faults, packed, len(patterns),
                             state=packed)
        denom = len(faults) - len(untestable)
        return {"coverage": len(sim.detected) / denom if denom else 1.0}

    flow.add_stage(Stage("atpg", ("circuit",), ("coverage",), atpg, "quality"))

    def seu(art):
        circuit = art["circuit"]
        workload = random_workload(circuit, 10, seed=2)
        campaign = run_campaign(circuit, workload, sample=120, seed=3)
        return {"avf": campaign.failure_rate}

    flow.add_stage(Stage("seu_campaign", ("circuit",), ("avf",), seu,
                         "reliability"))

    def fit(art):
        budget = FitBudget("ASIL-B")
        budget.add(ComponentSER("state", 4096, "28nm",
                                functional_derating=art["avf"]))
        return {"fit_ok": budget.meets_target,
                "fit_total": budget.total_effective_fit}

    flow.add_stage(Stage("fit_budget", ("avf",), ("fit_ok", "fit_total"),
                         fit, "reliability"))

    def laser(art):
        stats = unlock_register_attack("28nm", attempts=40, seed=5)
        return {"laser_single_bit": stats.single_bit_success_rate}

    flow.add_stage(Stage("laser_audit", ("circuit",), ("laser_single_bit",),
                         laser, "security"))
    return flow


def test_fig2_holistic_flow(benchmark):
    report = benchmark.pedantic(lambda: _make_flow().run(),
                                rounds=1, iterations=1)
    print("\n" + format_table(
        ["stage", "aspect", "seconds", "produces"], report.rows(),
        title="Fig. 2 — holistic flow run"))
    print(f"\nartifacts: coverage={report.artifacts['coverage']:.3f} "
          f"avf={report.artifacts['avf']:.3f} "
          f"fit={report.artifacts['fit_total']:.2f} "
          f"laser-1bit={report.artifacts['laser_single_bit']:.2f}")

    # the flow must traverse all three aspects and share the circuit
    aspects = {s.aspect for s in report.stages}
    assert aspects == {"quality", "reliability", "security"}
    assert report.artifacts["coverage"] > 0.9
    assert 0.0 <= report.artifacts["avf"] <= 1.0
