"""E7 — tool-confidence cross-check ([20][48][50], III.D).

"Combining the strengths of ATPGs, Formal methods and Fault Injection
simulation to automatically verify tools and detect any errors in their
fault classification."  The bench cross-checks the three engines clean
(full agreement) and then with two seeded tool bugs (both flagged).
"""

from repro.circuit import load
from repro.core import format_table
from repro.faults import collapse
from repro.safety import (
    atpg_classifier,
    buggy_drops_branch_faults,
    buggy_optimistic,
    cross_check,
    default_engines,
    formal_classifier,
)


def _experiment():
    circuit = load("c17")
    faults, _ = collapse(circuit)
    clean = cross_check(circuit, faults, default_engines())

    engines_a = default_engines()
    engines_a["atpg_buggy"] = buggy_drops_branch_faults(atpg_classifier)
    bug_a = cross_check(circuit, faults, engines_a)

    mul = load("mul4")
    mul_faults, _ = collapse(mul)
    engines_b = {"formal": formal_classifier,
                 "optimistic": buggy_optimistic(formal_classifier, every=1)}
    bug_b = cross_check(mul, mul_faults, engines_b)
    return clean, bug_a, bug_b


def test_e7_tool_confidence(benchmark):
    clean, bug_a, bug_b = benchmark.pedantic(_experiment, rounds=1,
                                             iterations=1)
    rows = [
        ("clean trio (c17)", len(clean.hard_disagreements),
         len(clean.soft_disagreements), clean.tool_bug_suspected),
        ("+ branch-dropping ATPG", len(bug_a.hard_disagreements),
         len(bug_a.soft_disagreements), bug_a.tool_bug_suspected),
        ("optimistic classifier (mul4)", len(bug_b.hard_disagreements),
         len(bug_b.soft_disagreements), bug_b.tool_bug_suspected),
    ]
    print("\n" + format_table(
        ["scenario", "hard disagreements", "soft", "bug suspected"],
        rows, title="E7 — fault-classification cross-check"))
    matrix = clean.agreement_matrix()
    print("clean pairwise agreement: "
          + ", ".join(f"{a}-{b}:{v:.2f}"
                      for (a, b), v in matrix.items() if a < b))

    # claim shape: clean tools agree fully; every seeded bug is flagged
    assert not clean.tool_bug_suspected
    assert bug_a.tool_bug_suspected
    assert bug_b.tool_bug_suspected
    assert all(v == 1.0 for v in matrix.values())
