"""E17 — AutoSoC safety configurations under fault injection (IV.B).

The benchmark suite exists to make safety-mechanism comparisons
"comparable between different proposed methodologies": the same
injection list replayed against QM / lockstep / ECC / full
configurations, with outcome distributions and detection latencies.
"""

from repro.autosoc import APPLICATIONS, SocConfig, compare_configurations
from repro.autosoc.fi import (
    CORRECTED_ECC,
    DETECTED_ECC,
    DETECTED_LOCKSTEP,
    HANG,
    MASKED,
    SDC,
)
from repro.core import CampaignDb, format_table


def _experiment():
    app = APPLICATIONS["fibonacci"]
    configs = [SocConfig.QM, SocConfig.LOCKSTEP, SocConfig.ECC,
               SocConfig.FULL]
    # the unified engine runs each configuration's campaign on a worker
    # pool and streams every injection into the shared campaign store
    db = CampaignDb()
    results = compare_configurations(app, configs, n_cpu=25, n_ram=15,
                                     seed=3, db=db, workers=2)
    return app, results, db


def test_e17_autosoc(benchmark):
    app, results, db = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    rows = []
    for config, res in results.items():
        rows.append((
            config.value, f"{res.rate(MASKED):.2f}", f"{res.rate(SDC):.2f}",
            f"{res.rate(DETECTED_LOCKSTEP):.2f}",
            f"{res.rate(CORRECTED_ECC) + res.rate(DETECTED_ECC):.2f}",
            f"{res.rate(HANG):.2f}", f"{res.dangerous_rate:.2f}",
            f"{res.mean_detection_latency:.1f}",
        ))
    print("\n" + format_table(
        ["config", "masked", "SDC", "lockstep det", "ecc", "hang",
         "dangerous", "latency"],
        rows, title=f"E17 — '{app.name}' under identical injections"))

    qm = results[SocConfig.QM]
    lockstep = results[SocConfig.LOCKSTEP]
    full = results[SocConfig.FULL]
    # claim shape: mechanisms strictly reduce dangerous outcomes;
    # lockstep detects CPU faults with single-digit latency; the full
    # configuration eliminates SDC entirely on this campaign
    assert lockstep.rate(SDC) < qm.rate(SDC) or qm.rate(SDC) == 0
    assert full.dangerous_rate <= qm.dangerous_rate
    assert full.rate(SDC) == 0.0
    if lockstep.lockstep_latencies:
        assert lockstep.mean_detection_latency < 10
    # every injection of every configuration landed in the shared store
    assert sum(db.cross_campaign_outcomes().values()) == sum(
        res.total for res in results.values())
    db.close()
