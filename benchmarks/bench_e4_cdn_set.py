"""E4 — SETs in clock distribution networks ([54], III.B).

A strike near the clock-tree root upsets exponentially more flops than a
data-path SET, and clock glitches bypass logical masking entirely.  Rows
report failure rate per tree level against the single-flop data-path
baseline, plus the analytic capture-probability-vs-width curve.
"""

from repro.circuit import load
from repro.core import format_table
from repro.soft_error import (
    build_clock_tree,
    failure_rate_vs_pulse_width,
    random_workload,
    run_cdn_campaign,
)


def _campaign():
    circuit = load("rand_seq")
    workload = random_workload(circuit, 12, seed=3)
    tree = build_clock_tree(circuit, depth=3)
    result = run_cdn_campaign(circuit, workload, tree,
                              strikes_per_level=48, seed=4)
    curve = failure_rate_vs_pulse_width([0.2, 0.5, 1.0, 2.0, 4.0, 8.0])
    return result, curve


def test_e4_cdn_set(benchmark):
    result, curve = benchmark.pedantic(_campaign, rounds=1, iterations=1)

    rows = []
    for level in sorted(result.level_failure_rate):
        rows.append((f"level {level} "
                     f"({'root' if level == 0 else 'leaf' if level == 3 else 'mid'})",
                     f"{result.level_failure_rate[level]:.2f}",
                     f"{result.level_flops_hit[level]:.1f}",
                     f"{result.amplification(level):.1f}x"))
    rows.append(("data-path (1 flop)", f"{result.datapath_failure_rate:.2f}",
                 "<=1.0", "1.0x"))
    print("\n" + format_table(
        ["strike site", "P(state upset)", "mean flops corrupted",
         "vs data path"], rows, title="E4 — CDN SET campaign"))
    print("capture probability vs clock-glitch width: "
          + ", ".join(f"w={w:g}:{p:.2f}" for w, p in curve))

    # claim shape: root strikes dominate; monotone width curve
    assert result.level_failure_rate[0] >= result.level_failure_rate[3]
    assert result.amplification(0) >= 1.0
    widths = [p for _w, p in curve]
    assert widths == sorted(widths)
