"""E6 — meet-in-the-middle fault management ([52][38][39], III.C).

"Fault handling at lower levels ... allows to avoid high, often
unacceptable, latencies" while "a higher-level component ... is able to
decide on a more abstract level".  Rows: reaction latency and share per
layer; plus SEU-monitor flux tracking and the pulse-detector design
curve.
"""

from repro.core import format_kv, format_table
from repro.ftol import (
    MeetInTheMiddle,
    PulseStretchingDetector,
    SramSeuMonitor,
    make_transient_storm,
)


def _experiment():
    units = ["alu", "lsu", "fpu", "dec"]
    system = MeetInTheMiddle(units, local_latency=2, poll_period=500)
    for event in make_transient_storm(units, 50, 30_000,
                                      permanent_unit="fpu", seed=2):
        system.inject(event)

    monitor = SramSeuMonitor(words=256, seed=1)
    true_flux = 5e-6
    monitor.expose(true_flux, 20_000)
    reading = monitor.sample(20_000)

    detector_curve = [
        (stages, PulseStretchingDetector(stages=stages).min_detectable_width())
        for stages in (4, 8, 16, 24)
    ]
    return system, (true_flux, reading), detector_curve


def test_e6_cross_layer(benchmark):
    system, (true_flux, reading), curve = benchmark.pedantic(
        _experiment, rounds=1, iterations=1)

    latency = system.latency_stats()
    fractions = system.handled_fraction()
    print("\n" + format_table(
        ["layer", "mean reaction latency (cycles)", "share of events"],
        [("local handler", f"{latency['local']:.1f}",
          f"{fractions.get('local', 0):.2f}"),
         ("global manager", f"{latency['global']:.1f}",
          f"{fractions.get('global', 0):.2f}")],
        title="E6 — meet-in-the-middle fault handling"))
    print(format_kv([
        ("retired units", sorted(system.manager.state.retired_units)),
        ("SEU monitor flux estimate", f"{reading.value:.2e} "
                                      f"(true {true_flux:.2e})"),
        ("detector width vs stages", ", ".join(
            f"{s}st:{w:.2f}" for s, w in curve)),
    ]))

    # claim shape: local is orders faster; the recurring-fault unit is
    # retired by the global layer; longer chains detect narrower pulses
    assert latency["local"] < latency["global"] / 10
    assert "fpu" in system.manager.state.retired_units
    widths = [w for _s, w in curve]
    assert widths == sorted(widths, reverse=True)
    assert abs(reading.value - true_flux) / true_flux < 1.0
