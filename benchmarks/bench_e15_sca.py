"""E15 — timing/power side-channel verification ([34], III.F).

The PASCAL-style flow: audit implementations for leakage, prove the
leaky ones exploitable (timing HW-recovery, CPA key recovery) and the
hardened ones silent (TVLA below threshold, CPA at chance level).
"""

import random

from repro.core import format_table
from repro.crypto import (
    AesConstantTime,
    AesLeaky,
    montgomery_ladder,
    square_and_multiply,
)
from repro.security import (
    audit_timing,
    recover_exponent_hw,
    success_rate_curve,
    tvla,
)

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


def _experiment():
    leaky, const = AesLeaky(KEY), AesConstantTime(KEY)
    audits = [
        audit_timing("modexp-s&m",
                     lambda s, d: square_and_multiply(d or 3, s, 65537).cycles),
        audit_timing("modexp-ladder",
                     lambda s, d: montgomery_ladder(d or 3, s, 65537).cycles),
        audit_timing("aes-table",
                     lambda s, d: leaky.encrypt(
                         s.to_bytes(16, "little"))[1].cycles, secret_bits=128),
        audit_timing("aes-ct",
                     lambda s, d: const.encrypt(
                         s.to_bytes(16, "little"))[1].cycles, secret_bits=128),
    ]
    rng = random.Random(9)
    calibration = [rng.randrange(1, 1 << 16) for _ in range(50)]
    secret = 0b1011001110001111
    hw_estimate = recover_exponent_hw(
        lambda s, d: square_and_multiply(3, s, 65537).cycles,
        secret, calibration)

    cpa_leaky = success_rate_curve(lambda: AesLeaky(KEY), KEY,
                                   [10, 25, 60], seed=4)
    cpa_masked = success_rate_curve(lambda: AesConstantTime(KEY), KEY,
                                    [60], seed=4)
    tvla_leaky = tvla(AesLeaky(KEY), 100, seed=5)
    tvla_masked = tvla(AesConstantTime(KEY), 100, seed=5)
    return (audits, (secret, hw_estimate), cpa_leaky, cpa_masked,
            tvla_leaky, tvla_masked)


def test_e15_sca(benchmark):
    (audits, (secret, hw_estimate), cpa_leaky, cpa_masked,
     tvla_leaky, tvla_masked) = benchmark.pedantic(_experiment, rounds=1,
                                                   iterations=1)
    rows = [(a.name, a.verdict, f"{abs(a.t_statistic):.1f}",
             f"{a.hw_correlation:.2f}") for a in audits]
    print("\n" + format_table(["implementation", "verdict", "|t|", "HW corr"],
                              rows, title="E15a — PASCAL-style timing audit"))
    print(f"timing attack: exponent HW recovered "
          f"{hw_estimate} (true {bin(secret).count('1')})")
    print("CPA success vs traces (leaky): "
          + ", ".join(f"{n}:{r:.2f}" for n, r in cpa_leaky))
    print(f"CPA vs masked @60 traces: {cpa_masked[0][1]:.2f}; "
          f"TVLA max|t| leaky {tvla_leaky.max_t:.1f} vs masked "
          f"{tvla_masked.max_t:.1f}")

    verdicts = {a.name: a.verdict for a in audits}
    assert verdicts["modexp-s&m"] == "LEAKY"
    assert verdicts["modexp-ladder"] == "constant-time"
    assert verdicts["aes-table"] == "LEAKY"
    assert verdicts["aes-ct"] == "constant-time"
    assert hw_estimate == bin(secret).count("1")
    assert cpa_leaky[-1][1] == 1.0
    assert cpa_masked[0][1] < 0.2
    assert tvla_leaky.leaks and not tvla_masked.leaks
