"""E9 — RSN test generation and diagnosis ([15][16][30][44][45], III.E).

"New techniques for reducing the duration of Reconfigurable Scan Network
test" at unchanged coverage, plus "a novel sequence generation approach
to diagnose faults".  Rows: strategy, shift cycles, coverage; then the
diagnosis resolution with and without refinement, and the retargeting
access-time saving.
"""

from repro.core import format_kv, format_table
from repro.rsn import (
    all_rsn_faults,
    build_signature_table,
    compact_test,
    compare_strategies,
    diagnostic_test,
    naive_access_cost,
    retarget,
    sib_tree,
)


def _experiment():
    factory = lambda: sib_tree(depth=3, regs_per_leaf=1, reg_bits=8)
    faults = all_rsn_faults(factory())
    comparison = compare_strategies(factory, faults)

    base = compact_test(factory)
    base_table = build_signature_table(factory, faults, base)
    _refined_test, refined_table = diagnostic_test(factory, faults, base,
                                                   max_extra_rounds=4)

    network = factory()
    network.reset()
    optimized = retarget(network, {"r5": 0xA5}).shift_cycles
    naive = naive_access_cost(factory(), {"r5": 0xA5})
    return comparison, base_table, refined_table, optimized, naive


def test_e9_rsn_test(benchmark):
    comparison, base_table, refined_table, optimized, naive = \
        benchmark.pedantic(_experiment, rounds=1, iterations=1)

    print("\n" + format_table(
        ["strategy", "shift cycles", "coverage"],
        [("exhaustive (per-SIB)", comparison.exhaustive_cycles,
          f"{comparison.exhaustive_coverage:.2f}"),
         ("compact (per-level)", comparison.compact_cycles,
          f"{comparison.compact_coverage:.2f}")],
        title="E9 — RSN test duration vs coverage"))
    print(format_kv([
        ("duration reduction", f"{comparison.duration_reduction:.0%}"),
        ("diagnosis resolution (base)", f"{base_table.resolution():.2f}"),
        ("diagnosis resolution (refined)", f"{refined_table.resolution():.2f}"),
        ("retarget access cycles", f"{optimized} vs naive {naive}"),
    ]))

    # claim shape: big duration cut at equal (full) coverage; diagnosis
    # close to perfect; optimized access beats flattening
    assert comparison.exhaustive_coverage == 1.0
    assert comparison.compact_coverage == 1.0
    assert comparison.duration_reduction > 0.5
    assert refined_table.resolution() <= base_table.resolution() <= 2.0
    assert optimized < naive
