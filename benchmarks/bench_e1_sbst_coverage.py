"""E1 — SBST coverage on CPU and GPGPU with untestable-fault correction.

III.A claims: SBST routines detect permanent faults in processor units;
identifying functionally untestable faults "is crucial to correctly
estimate the fault coverage achieved by any test method".  Rows report
raw vs corrected coverage for the AutoSoC CPU and the SIMT GPGPU.
"""

from repro.atpg import functionally_untestable_delta, run_cpu_sbst
from repro.circuit import load
from repro.core import format_table
from repro.faults import collapse
from repro.gpgpu import run_sbst_suite


def _experiment():
    cpu = run_cpu_sbst()
    gpu_full = run_sbst_suite(n_warps=2, warp_size=8)
    gpu_half = run_sbst_suite(n_warps=4, warp_size=8, launched_warps=2)
    alu = load("alu4")
    faults, _ = collapse(alu)
    delta = functionally_untestable_delta(alu, faults, {"op0": 0, "op1": 0})
    return cpu, gpu_full, gpu_half, (len(delta), len(faults))


def test_e1_sbst_coverage(benchmark):
    cpu, gpu_full, gpu_half, (delta, total) = benchmark.pedantic(
        _experiment, rounds=1, iterations=1)

    rows = [
        ("AutoSoC CPU (all units)", f"{cpu.coverage:.2f}", f"{cpu.coverage:.2f}"),
        ("GPGPU, full grid", f"{gpu_full.raw_coverage:.2f}",
         f"{gpu_full.effective_coverage:.2f}"),
        ("GPGPU, half grid launched", f"{gpu_half.raw_coverage:.2f}",
         f"{gpu_half.effective_coverage:.2f}"),
    ]
    print("\n" + format_table(["target", "raw coverage", "effective coverage"],
                              rows, title="E1 — SBST coverage"))
    print(f"per-unit CPU coverage: "
          f"{ {k: round(v, 2) for k, v in cpu.per_unit().items()} }")
    print(f"ALU functionally untestable under op=ADD: {delta}/{total}")

    # claim shape: SBST reaches high coverage; the untestable correction
    # turns the apparently-poor half-grid figure into the true one
    assert cpu.coverage > 0.8
    assert gpu_full.effective_coverage == 1.0
    assert gpu_half.raw_coverage < 0.6
    assert gpu_half.effective_coverage == 1.0
    assert delta > 20  # constraints make a large fault set untestable
