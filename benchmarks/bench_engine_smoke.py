"""Engine smoke benchmark — seeds the perf trajectory (BENCH_engine.json).

Two measurements on the ``rand_seq`` circuit used by E3/E8:

1. **PPSFP fast path**: the pre-refactor gate-level loop (fresh fan-out
   BFS plus a full topo-order scan per fault per batch, no fault
   dropping — restated here verbatim as the baseline) against the
   engine's cone-cached, fault-dropping batched path.  Must be >= 2x
   with identical coverage.
2. **Engine throughput**: SEU injections/second through the unified
   engine, serial vs thread-pool workers, with streaming CampaignDb
   persistence on.

Runs standalone (``python benchmarks/bench_engine_smoke.py``) or under
pytest; both write ``BENCH_engine.json`` at the repo root.
"""

import json
import time
from collections import deque
from pathlib import Path

from repro.circuit import load
from repro.core import CampaignDb, format_table
from repro.engine import EngineConfig, SeuBackend, run_campaign
from repro.faults import collapse
from repro.sim import fault_simulate_batched, random_patterns
from repro.sim.fault_sim import _observe_nets
from repro.sim.logic import eval_gate, mask_of, simulate
from repro.soft_error import random_workload

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


# ----------------------------------------------------------------------
# pre-refactor PPSFP baseline (the seed's per-fault cone recomputation)
# ----------------------------------------------------------------------
def _baseline_cone_gates(circuit, start_nets):
    fmap = circuit.fanout_map()
    reach, work = set(), deque(start_nets)
    while work:
        net = work.popleft()
        if net in reach:
            continue
        reach.add(net)
        for dst in fmap.get(net, ()):
            if dst in circuit.flops:
                continue
            work.append(dst)
    return [g for g in circuit.topo_order() if g.output in reach or
            any(i in reach for i in g.inputs)]


def _baseline_detection_mask(circuit, fault, good, mask, observe):
    forced = mask if fault.value else 0
    line = fault.line
    bad = dict(good)
    if line.is_stem:
        bad[line.net] = forced
        for gate in _baseline_cone_gates(circuit, [line.net]):
            if gate.output == line.net:
                continue
            bad[gate.output] = eval_gate(gate, bad, mask)
        bad[line.net] = forced
    elif line.sink in circuit.gates:
        gate = circuit.gates[line.sink]
        shadow = dict(bad)
        shadow[line.net] = forced
        bad[line.sink] = eval_gate(gate, shadow, mask)
        for downstream in _baseline_cone_gates(circuit, [line.sink]):
            if downstream.output == line.sink:
                continue
            bad[downstream.output] = eval_gate(downstream, bad, mask)
    elif line.sink in circuit.flops:
        bad[f"__flopD__{line.sink}"] = forced
    det = 0
    for net in observe:
        good_v = good.get(net, 0)
        if (not line.is_stem and line.sink in circuit.flops
                and net == circuit.flops[line.sink].d):
            bad_v = bad.get(f"__flopD__{line.sink}", bad.get(net, 0))
        else:
            bad_v = bad.get(net, 0)
        det |= (good_v ^ bad_v) & mask
    return det


def _ppsfp_measurement(n_batches=8, batch_patterns=16):
    circuit = load("rand_seq")
    faults, _ = collapse(circuit)
    batches = [(random_patterns(circuit.inputs, batch_patterns, seed=100 + b),
                batch_patterns) for b in range(n_batches)]
    state = random_patterns(circuit.flops, batch_patterns, seed=999)
    observe = _observe_nets(circuit, True)
    mask = mask_of(batch_patterns)

    start = time.perf_counter()
    baseline_detected = set()
    for pi_values, n in batches:
        good = simulate(circuit, pi_values, n, state)
        for fault in faults:
            if _baseline_detection_mask(circuit, fault, good, mask, observe):
                baseline_detected.add(fault)
    t_baseline = time.perf_counter() - start

    circuit._cone_cache.clear()
    start = time.perf_counter()
    fast = fault_simulate_batched(circuit, faults, batches, state=state,
                                  drop_detected=True)
    t_fast = time.perf_counter() - start

    identical = (set(fast.detected) == baseline_detected
                 and len(fast.detected) + len(fast.undetected) == len(faults))
    return {
        "circuit": circuit.name,
        "n_faults": len(faults),
        "n_patterns": n_batches * batch_patterns,
        "coverage": round(fast.coverage, 4),
        "coverage_identical": identical,
        "baseline_s": round(t_baseline, 4),
        "fast_path_s": round(t_fast, 4),
        "speedup": round(t_baseline / t_fast, 2) if t_fast else float("inf"),
    }


def _engine_throughput(workers_list=(1, 4), n_cycles=12):
    circuit = load("rand_seq")
    workload = random_workload(circuit, n_cycles, seed=7)
    rows = {}
    for workers in workers_list:
        db = CampaignDb()
        backend = SeuBackend(circuit, workload)
        report = run_campaign(backend,
                              EngineConfig(batch_size=16, workers=workers),
                              db=db)
        db.close()
        key = "serial" if workers == 1 else f"parallel_x{workers}"
        rows[key] = {
            "injections": report.total,
            "elapsed_s": round(report.elapsed_s, 4),
            "injections_per_s": round(report.injections_per_second, 1),
        }
    return rows


def run_smoke():
    record = {
        "bench": "engine_smoke",
        "ppsfp_fast_path": _ppsfp_measurement(),
        "seu_engine_throughput": _engine_throughput(),
    }
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")
    return record


def test_engine_smoke(benchmark):
    record = benchmark.pedantic(run_smoke, rounds=1, iterations=1)
    ppsfp = record["ppsfp_fast_path"]
    throughput = record["seu_engine_throughput"]
    rows = [("ppsfp baseline", f"{ppsfp['baseline_s']:.3f}s", "1.00x", ""),
            ("ppsfp cone cache + dropping", f"{ppsfp['fast_path_s']:.3f}s",
             f"{ppsfp['speedup']:.2f}x",
             "identical" if ppsfp["coverage_identical"] else "MISMATCH")]
    for key, row in throughput.items():
        rows.append((f"seu engine ({key})", f"{row['elapsed_s']:.3f}s",
                     f"{row['injections_per_s']:.0f} inj/s", ""))
    print("\n" + format_table(
        ["path", "time", "speed", "coverage"], rows,
        title=f"Engine smoke — {ppsfp['circuit']}, "
              f"{ppsfp['n_faults']} faults, {ppsfp['n_patterns']} patterns"))
    print(f"perf record written to {RECORD_PATH.name}")

    # claim shape: the fast path is lossless and materially faster
    assert ppsfp["coverage_identical"]
    assert ppsfp["speedup"] >= 2.0
    counts = {row["injections"] for row in throughput.values()}
    assert len(counts) == 1 and counts.pop() > 0  # same campaign at any width


if __name__ == "__main__":
    print(json.dumps(run_smoke(), indent=2))
