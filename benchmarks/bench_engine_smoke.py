"""Engine smoke benchmark — seeds the perf trajectory (BENCH_engine.json).

Four measurements:

1. **PPSFP fast path**: the pre-refactor gate-level loop (fresh fan-out
   BFS plus a full topo-order scan per fault per batch, no fault
   dropping — restated here verbatim as the baseline) against the
   engine's cone-cached, fault-dropping batched path.  Must be >= 2x
   with identical coverage.
2. **eval_gate dispatch**: the pre-dispatch if/elif GateType chain
   (restated verbatim) against the module-level dispatch table that
   replaced it, swept over a packed-pattern topo evaluation.
3. **Executor scaling**: the same SEU campaign swept over
   executors × workers — serial, thread x{2,4} and process x{1,2,4} —
   with streaming CampaignDb persistence on, plus outcome-identity
   checks across every cell.  On a multicore host the process rows are
   the multicore-scaling claim; `process_x1` exposes the pure
   spawn/ship overhead.
4. **PPSFP-statistical scaling**: a seeded fault-sample campaign on a
   larger random circuit over the same executor grid (abridged).
5. **RSN-diagnosis and GPGPU-SEU scaling**: the two workload families
   ported in the full-port PR, on abridged executor grids — their rows
   gate outcome identity for the new backends in CI.
6. **Lane packing**: the SEU and slicing smoke workloads per-point
   (``lane_width=1``) against the packed path at widths 7 and 64 —
   outcome identity is required unconditionally, and the packed SEU row
   carries the >= 3x CI gate (target >= 5x).
7. **Persistent worker pool**: the same process campaign repeated
   back-to-back with ``reuse_pool`` off (fresh spawn per campaign, the
   pre-pool behaviour) and on (module-level pool registry) — identity
   gated, spawn amortisation reported.
8. **Compiled simulation core**: the reference interpreter against the
   codegen'd programs of :mod:`repro.sim.compiled` on a
   fault-dictionary PPSFP sweep (cold = includes codegen+compile, warm
   = steady state) and on the packed SEU campaign — identity gated
   unconditionally, warm PPSFP >= 3x is the CI floor (target 5x).
9. **Pattern shipping**: a PPSFP backend whose pickled pattern payload
   crosses the temp-file threshold — campaign payload size with the
   patterns parked vs inlined, identity gated.
10. **Vector core**: the packed-64 compiled SEU campaign against the
    vector tier at 256 and 1024 lanes (big-int backing, plus an honest
    forced-ndarray row) — identity vs the per-point reference is
    required unconditionally at every width, and the 256-lane row
    carries the >= 2x-over-packed CI gate (target >= 3x).  The section
    also records the source-interning effect on a cold det-program
    sweep (sites vs unique compiled sources, cold vs warm).
11. **SoA core**: the big-int backing against the level-batched SoA
    kernel tier (one fused numpy op per level-family group over the
    whole ``(2 * n_slots, blocks)`` mirror matrix) on a wide random
    circuit at 256/1024/4096 lanes, via direct ``seu_outcomes`` calls
    best-of-3.  Identity is required unconditionally — between the two
    backings at every width, and against a per-point ``inject_seu``
    probe — and the 1024-lane row carries the >= 2x-over-int CI gate
    (warning-only when the host's calibrated crossover sits above 1024
    lanes); the 4096-lane row must not regress below parity.
12. **Resilience**: a campaign aborted mid-flight and resumed from its
    CampaignDb checkpoints against the uninterrupted reference
    (byte-identical rows, outcomes, counts and convergence — gated
    unconditionally); a persistently-failing chunk (ChaosBackend)
    quarantined without failing the campaign; and the cost of the
    armed fault-tolerance machinery (retries + timeout accounting) on
    a no-fault run, min-of-3, gated at <= 5% overhead.

Runs standalone (``python benchmarks/bench_engine_smoke.py``) or under
pytest; both write ``BENCH_engine.json`` at the repo root.
``benchmarks/check_engine_regression.py`` turns the record into a CI
gate (process x4 must not be slower than serial on SEU when the host
has the cores to scale).
"""

import json
import random
import time
from collections import deque
from functools import partial
from pathlib import Path

from repro.circuit import load
from repro.circuit.library import random_combinational
from repro.core import CampaignDb, format_table
from repro.engine import (
    ChaosBackend,
    ChaosFault,
    EngineConfig,
    GpgpuSeuBackend,
    PpsfpBackend,
    RsnDiagnosisBackend,
    SeuBackend,
    resume_campaign,
    run_campaign,
)
from repro.engine.executors import _usable_cpus as _host_cpus
from repro.faults import collapse
from repro.gpgpu import reduction_kernel
from repro.gpgpu.apps import _draw_faults, _run as _run_simt
from repro.rsn import all_rsn_faults, compact_test, sib_tree
from repro.sim import fault_simulate_batched, random_patterns
from repro.sim.fault_sim import _observe_nets
from repro.sim.logic import GateType, eval_gate, mask_of, simulate
from repro.soft_error import random_workload

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


# ----------------------------------------------------------------------
# pre-refactor PPSFP baseline (the seed's per-fault cone recomputation)
# ----------------------------------------------------------------------
def _baseline_cone_gates(circuit, start_nets):
    fmap = circuit.fanout_map()
    reach, work = set(), deque(start_nets)
    while work:
        net = work.popleft()
        if net in reach:
            continue
        reach.add(net)
        for dst in fmap.get(net, ()):
            if dst in circuit.flops:
                continue
            work.append(dst)
    return [g for g in circuit.topo_order() if g.output in reach or
            any(i in reach for i in g.inputs)]


def _baseline_detection_mask(circuit, fault, good, mask, observe):
    forced = mask if fault.value else 0
    line = fault.line
    bad = dict(good)
    if line.is_stem:
        bad[line.net] = forced
        for gate in _baseline_cone_gates(circuit, [line.net]):
            if gate.output == line.net:
                continue
            bad[gate.output] = eval_gate(gate, bad, mask)
        bad[line.net] = forced
    elif line.sink in circuit.gates:
        gate = circuit.gates[line.sink]
        shadow = dict(bad)
        shadow[line.net] = forced
        bad[line.sink] = eval_gate(gate, shadow, mask)
        for downstream in _baseline_cone_gates(circuit, [line.sink]):
            if downstream.output == line.sink:
                continue
            bad[downstream.output] = eval_gate(downstream, bad, mask)
    elif line.sink in circuit.flops:
        bad[f"__flopD__{line.sink}"] = forced
    det = 0
    for net in observe:
        good_v = good.get(net, 0)
        if (not line.is_stem and line.sink in circuit.flops
                and net == circuit.flops[line.sink].d):
            bad_v = bad.get(f"__flopD__{line.sink}", bad.get(net, 0))
        else:
            bad_v = bad.get(net, 0)
        det |= (good_v ^ bad_v) & mask
    return det


def _ppsfp_measurement(n_batches=8, batch_patterns=16):
    circuit = load("rand_seq")
    faults, _ = collapse(circuit)
    batches = [(random_patterns(circuit.inputs, batch_patterns, seed=100 + b),
                batch_patterns) for b in range(n_batches)]
    state = random_patterns(circuit.flops, batch_patterns, seed=999)
    observe = _observe_nets(circuit, True)
    mask = mask_of(batch_patterns)

    start = time.perf_counter()
    baseline_detected = set()
    for pi_values, n in batches:
        good = simulate(circuit, pi_values, n, state)
        for fault in faults:
            if _baseline_detection_mask(circuit, fault, good, mask, observe):
                baseline_detected.add(fault)
    t_baseline = time.perf_counter() - start

    circuit._cone_cache.clear()
    start = time.perf_counter()
    fast = fault_simulate_batched(circuit, faults, batches, state=state,
                                  drop_detected=True)
    t_fast = time.perf_counter() - start

    identical = (set(fast.detected) == baseline_detected
                 and len(fast.detected) + len(fast.undetected) == len(faults))
    return {
        "circuit": circuit.name,
        "n_faults": len(faults),
        "n_patterns": n_batches * batch_patterns,
        "coverage": round(fast.coverage, 4),
        "coverage_identical": identical,
        "baseline_s": round(t_baseline, 4),
        "fast_path_s": round(t_fast, 4),
        "speedup": round(t_baseline / t_fast, 2) if t_fast else float("inf"),
    }


# ----------------------------------------------------------------------
# pre-dispatch eval_gate baseline (the seed's if/elif GateType chain)
# ----------------------------------------------------------------------
def _baseline_eval_gate_chain(gate, values, mask):
    gtype = gate.gtype
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return mask
    ins = [values[i] for i in gate.inputs]
    if gtype is GateType.BUF:
        return ins[0]
    if gtype is GateType.NOT:
        return ~ins[0] & mask
    acc = ins[0]
    if gtype in (GateType.AND, GateType.NAND):
        for v in ins[1:]:
            acc &= v
        return acc if gtype is GateType.AND else ~acc & mask
    if gtype in (GateType.OR, GateType.NOR):
        for v in ins[1:]:
            acc |= v
        return acc if gtype is GateType.OR else ~acc & mask
    for v in ins[1:]:
        acc ^= v
    return acc if gtype is GateType.XOR else ~acc & mask


def _eval_gate_measurement(n_patterns=32, sweeps=400):
    circuit = load("rand_seq")
    mask = mask_of(n_patterns)
    values = dict(random_patterns(circuit.inputs, n_patterns, seed=17))
    values.update(random_patterns(circuit.flops, n_patterns, seed=18))
    order = circuit.topo_order()

    def sweep(evaluate):
        vals = dict(values)
        for gate in order:
            vals[gate.output] = evaluate(gate, vals, mask)
        return vals

    assert sweep(_baseline_eval_gate_chain) == sweep(eval_gate)

    start = time.perf_counter()
    for _ in range(sweeps):
        sweep(_baseline_eval_gate_chain)
    t_chain = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(sweeps):
        sweep(eval_gate)
    t_dispatch = time.perf_counter() - start
    return {
        "circuit": circuit.name,
        "gate_evals": len(order) * sweeps,
        "chain_s": round(t_chain, 4),
        "dispatch_s": round(t_dispatch, 4),
        "speedup": round(t_chain / t_dispatch, 2) if t_dispatch else
        float("inf"),
    }


# ----------------------------------------------------------------------
# executor x workers scaling sweeps
# ----------------------------------------------------------------------
def _sweep(make_backend, config_kwargs, grid):
    """Run one campaign per (executor, workers) cell; returns the table
    plus identity checks against the serial cell."""
    rows = {}
    reference = None
    identical = True
    for executor, workers in grid:
        db = CampaignDb()
        # reuse_pool off: every process row pays cold worker spawn, so
        # cells stay comparable across sections (and with earlier PRs);
        # warm-pool amortisation is measured in the persistent_pool
        # section, not here
        report = run_campaign(
            make_backend(),
            EngineConfig(workers=workers, executor=executor,
                         reuse_pool=False, **config_kwargs),
            db=db)
        db.close()
        key = f"{executor}_x{workers}"
        # a silent engine fallback (e.g. process -> thread) would make the
        # scaling rows measure the wrong strategy; fail loudly instead
        assert report.executor == executor, (
            f"{key}: engine resolved to {report.executor!r}")
        rows[key] = {
            "injections": report.total,
            "elapsed_s": round(report.elapsed_s, 4),
            "injections_per_s": round(report.injections_per_second, 1),
        }
        outcome_rows = [(i.location, i.cycle, i.outcome)
                        for i in report.injections]
        if reference is None:
            reference = outcome_rows
        elif outcome_rows != reference:
            identical = False
    serial_rate = rows["serial_x1"]["injections_per_s"]
    for row in rows.values():
        row["speedup_vs_serial"] = (
            round(row["injections_per_s"] / serial_rate, 2)
            if serial_rate else 0.0)
    return rows, identical


def _seu_scaling(n_cycles=120):
    circuit = load("rand_seq")
    workload = random_workload(circuit, n_cycles, seed=7)

    def make_backend():
        # per-point path pinned: these rows measure executor dispatch
        # against fixed per-injection work (the packed-vs-per-point
        # comparison lives in the lane_packing section)
        return SeuBackend(circuit.copy(), workload, lane_width=1)

    grid = [("serial", 1), ("thread", 2), ("thread", 4),
            ("process", 1), ("process", 2), ("process", 4)]
    rows, identical = _sweep(make_backend, {"batch_size": 24}, grid)
    return {
        "circuit": circuit.name,
        "population": len(circuit.flops) * n_cycles,
        "n_cycles": n_cycles,
        "grid": rows,
        "outcome_identical": identical,
        "process_x4_speedup": rows["process_x4"]["speedup_vs_serial"],
    }


def _ppsfp_statistical_scaling(n_gates=2000, n_batches=10, sample=4000):
    circuit = random_combinational(n_inputs=24, n_gates=n_gates, seed=5)
    faults, _ = collapse(circuit)
    batches = [(random_patterns(circuit.inputs, 32, seed=100 + b), 32)
               for b in range(n_batches)]

    def make_backend():
        return PpsfpBackend(circuit.copy(), faults, batches)

    grid = [("serial", 1), ("thread", 4), ("process", 2), ("process", 4)]
    rows, identical = _sweep(
        make_backend,
        {"batch_size": 128, "sample": sample, "seed": 11}, grid)
    return {
        "circuit": circuit.name,
        "fault_universe": len(faults),
        "sample": sample,
        "grid": rows,
        "outcome_identical": identical,
        "process_x4_speedup": rows["process_x4"]["speedup_vs_serial"],
    }


def _rsn_diagnosis_scaling(depth=3):
    factory = partial(sib_tree, depth=depth, regs_per_leaf=1, reg_bits=8)
    faults = all_rsn_faults(factory())
    test = compact_test(factory)

    def make_backend():
        return RsnDiagnosisBackend(factory, faults, test)

    grid = [("serial", 1), ("thread", 4), ("process", 2), ("process", 4)]
    rows, identical = _sweep(make_backend, {"batch_size": 8}, grid)
    return {
        "network": factory().name,
        "fault_universe": len(faults),
        "test_shift_cycles": test.shift_cycles,
        "grid": rows,
        "outcome_identical": identical,
        "process_x4_speedup": rows["process_x4"]["speedup_vs_serial"],
    }


def _gpgpu_seu_scaling(n_injections=240):
    rng = random.Random(2)
    inputs = [rng.randrange(256) for _ in range(128)]
    kernel = reduction_kernel()
    _golden, issues = _run_simt(kernel, inputs, [])
    faults = _draw_faults(rng, n_injections, 32, issues)

    def make_backend():
        return GpgpuSeuBackend(kernel, inputs, faults, label="reduction")

    grid = [("serial", 1), ("thread", 4), ("process", 2), ("process", 4)]
    rows, identical = _sweep(make_backend, {"batch_size": 16}, grid)
    return {
        "kernel": "reduction",
        "issue_slots": issues,
        "n_injections": n_injections,
        "grid": rows,
        "outcome_identical": identical,
        "process_x4_speedup": rows["process_x4"]["speedup_vs_serial"],
    }


# ----------------------------------------------------------------------
# lane packing: per-point vs packed, identity required
# ----------------------------------------------------------------------
def _lane_rows(make_backend, widths, config_kwargs):
    rows = {}
    reference = None
    identical = True
    for width in widths:
        report = run_campaign(make_backend(width),
                              EngineConfig(executor="serial",
                                           **config_kwargs))
        rows[f"w{width}"] = {
            "injections": report.total,
            "elapsed_s": round(report.elapsed_s, 4),
            "injections_per_s": round(report.injections_per_second, 1),
        }
        outcome_rows = [(i.location, i.cycle, i.outcome)
                        for i in report.injections]
        if reference is None:
            reference = outcome_rows
        elif outcome_rows != reference:
            identical = False
    per_point = rows[f"w{widths[0]}"]["elapsed_s"]
    for row in rows.values():
        row["speedup_vs_per_point"] = (
            round(per_point / row["elapsed_s"], 2) if row["elapsed_s"]
            else float("inf"))
    return rows, identical


def _lane_packing_measurement(n_cycles=120):
    from repro.sim import compiled as _compiled

    circuit = load("rand_seq")
    workload = random_workload(circuit, n_cycles, seed=7)
    # interpreter pinned: these rows isolate the lane-packing effect
    # (W injections per sequential run vs one), so both sides run the
    # same evaluation core as when the 3x floor was established; the
    # compiled-vs-interpreted claim has its own compiled_sim section
    with _compiled.disabled():
        seu_rows, seu_identical = _lane_rows(
            lambda width: SeuBackend(circuit.copy(), workload,
                                     lane_width=width),
            (1, 7, 64), {"batch_size": 64})

        faults, _ = collapse(circuit)
        slicing_workload = random_workload(circuit, 30, seed=3)
        slicing_faults = faults[:40]
        from repro.engine.workloads import SlicingBackend

        slicing_rows, slicing_identical = _lane_rows(
            lambda width: SlicingBackend(circuit.copy(), slicing_faults,
                                         slicing_workload, use_filter=False,
                                         lane_width=width),
            (1, 64), {"batch_size": 64})
    return {
        "circuit": circuit.name,
        "seu": {
            "population": len(circuit.flops) * n_cycles,
            "grid": seu_rows,
            "outcome_identical": seu_identical,
            "packed_speedup": seu_rows["w64"]["speedup_vs_per_point"],
        },
        "slicing": {
            "population": len(slicing_faults) * 30,
            "grid": slicing_rows,
            "outcome_identical": slicing_identical,
            "packed_speedup": slicing_rows["w64"]["speedup_vs_per_point"],
        },
    }


# ----------------------------------------------------------------------
# persistent pool: fresh spawn per campaign vs reused registry pool
# ----------------------------------------------------------------------
def _persistent_pool_measurement(n_campaigns=3, n_cycles=40):
    from repro.engine import shutdown_pools

    circuit = load("rand_seq")
    workload = random_workload(circuit, n_cycles, seed=7)

    def sweep(reuse):
        rows = []
        start = time.perf_counter()
        for _ in range(n_campaigns):
            report = run_campaign(
                SeuBackend(circuit.copy(), workload, lane_width=1),
                EngineConfig(batch_size=8, workers=2, executor="process",
                             reuse_pool=reuse))
            assert report.executor == "process", report.executor
            rows.append([(i.location, i.cycle, i.outcome)
                         for i in report.injections])
        return time.perf_counter() - start, rows

    shutdown_pools()
    fresh_s, fresh_rows = sweep(False)
    reused_s, reused_rows = sweep(True)
    shutdown_pools()
    return {
        "circuit": circuit.name,
        "n_campaigns": n_campaigns,
        "fresh_pools_s": round(fresh_s, 4),
        "reused_pool_s": round(reused_s, 4),
        "speedup": round(fresh_s / reused_s, 2) if reused_s else float("inf"),
        "outcome_identical": fresh_rows == reused_rows,
    }


# ----------------------------------------------------------------------
# compiled simulation core: interpreter vs codegen'd programs
# ----------------------------------------------------------------------
def _compiled_sim_measurement(n_gates=800, n_batches=12, batch_patterns=16,
                              n_cycles=120):
    from repro.sim import compiled as _compiled

    record = {}
    # fault-dictionary PPSFP (no dropping — diagnosis/compaction-style
    # full detection masks), every site evaluated once per batch
    circuit = random_combinational(n_inputs=24, n_gates=n_gates, seed=5)
    faults, _ = collapse(circuit)
    batches = [(random_patterns(circuit.inputs, batch_patterns,
                                seed=100 + b), batch_patterns)
               for b in range(n_batches)]

    def dictionary_sweep():
        return fault_simulate_batched(circuit, faults, batches,
                                      drop_detected=False)

    old_hits = _compiled.COMPILE_AFTER_HITS
    _compiled.COMPILE_AFTER_HITS = 0  # measure the core, not the policy
    try:
        with _compiled.disabled():
            start = time.perf_counter()
            interp = dictionary_sweep()
            t_interp = time.perf_counter() - start
        circuit._program_cache.clear()
        start = time.perf_counter()
        cold = dictionary_sweep()  # pays codegen + compile per site
        t_cold = time.perf_counter() - start
        start = time.perf_counter()
        warm = dictionary_sweep()  # steady state: programs cached
        t_warm = time.perf_counter() - start
    finally:
        _compiled.COMPILE_AFTER_HITS = old_hits
    ppsfp_identical = (
        interp.detected == cold.detected == warm.detected
        and interp.undetected == cold.undetected == warm.undetected)
    record["ppsfp"] = {
        "circuit": circuit.name,
        "n_faults": len(faults),
        "n_patterns": n_batches * batch_patterns,
        "outcome_identical": ppsfp_identical,
        "interpreted_s": round(t_interp, 4),
        "compiled_cold_s": round(t_cold, 4),
        "compiled_warm_s": round(t_warm, 4),
        "cold_speedup": round(t_interp / t_cold, 2) if t_cold else
        float("inf"),
        "warm_speedup": round(t_interp / t_warm, 2) if t_warm else
        float("inf"),
    }

    # packed SEU campaign: the sequential path (step program + lanes).
    # One shared circuit instance across runs — a copy would start with
    # an empty program cache and the timed run would pay compilation
    seq = load("rand_seq")
    workload = random_workload(seq, n_cycles, seed=7)

    def seu_campaign():
        report = run_campaign(
            SeuBackend(seq, workload, lane_width=64),
            EngineConfig(batch_size=64, executor="serial"))
        return [(i.location, i.cycle, i.outcome) for i in report.injections]

    seu_campaign()  # warm the per-circuit step program (eagerly compiled)
    start = time.perf_counter()
    rows_compiled = seu_campaign()
    t_seu_compiled = time.perf_counter() - start
    with _compiled.disabled():
        start = time.perf_counter()
        rows_interp = seu_campaign()
        t_seu_interp = time.perf_counter() - start
    record["seu"] = {
        "circuit": seq.name,
        "population": len(seq.flops) * n_cycles,
        "outcome_identical": rows_compiled == rows_interp,
        "interpreted_s": round(t_seu_interp, 4),
        "compiled_s": round(t_seu_compiled, 4),
        "speedup": round(t_seu_interp / t_seu_compiled, 2)
        if t_seu_compiled else float("inf"),
    }
    return record


# ----------------------------------------------------------------------
# vector core: packed-64 vs 64xN-lane campaigns, identity required
# ----------------------------------------------------------------------
def _vector_core_measurement(n_cycles=120):
    from repro.sim import compiled as _compiled
    from repro.circuit.library import random_sequential

    # larger than the smoke rand_seq: with only 12 flops the fixed
    # per-injection costs (outcome recovery, engine bookkeeping) mask
    # the per-run saving the wider lanes buy
    circuit = random_sequential(n_inputs=10, n_gates=400, n_flops=40,
                                seed=3)
    workload = random_workload(circuit, n_cycles, seed=7)

    def campaign(width, backing=None):
        kwargs = {"lane_width": width}
        if backing is not None:
            kwargs["lane_backing"] = backing
        # one shared circuit instance: the step program compiles once
        # and every width reuses the same code object (the vector
        # wrappers add only lane geometry)
        backend = SeuBackend(circuit, workload, **kwargs)
        report = run_campaign(backend,
                              EngineConfig(executor="serial"))
        return (backend, report,
                [(i.location, i.cycle, i.outcome)
                 for i in report.injections])

    _, _, ref_rows = campaign(1)  # per-point identity reference
    campaign(64)  # warm the shared step program (eagerly compiled)

    variants = (("w64_packed", 64, None),
                ("w256_vector", 256, None),
                ("w1024_vector", 1024, None),
                ("w1024_ndarray", 1024, "ndarray"))
    rows = {}
    identical = True
    for label, width, backing in variants:
        backend, report, out_rows = campaign(width, backing)
        ctx = backend._lane_ctx
        rows[label] = {
            "injections": report.total,
            "backing": ctx.backing if ctx is not None else "none",
            "elapsed_s": round(report.elapsed_s, 4),
            "injections_per_s": round(report.injections_per_second, 1),
            "identical_vs_per_point": out_rows == ref_rows,
        }
        identical = identical and out_rows == ref_rows
    packed = rows["w64_packed"]["elapsed_s"]
    for row in rows.values():
        row["speedup_vs_packed"] = (
            round(packed / row["elapsed_s"], 2) if row["elapsed_s"]
            else float("inf"))

    # source interning: a cold fault-dictionary sweep compiles once per
    # distinct cone *structure*, not once per site.  Structured
    # circuits repeat cone shapes heavily (rand_seq: 230 det sites
    # share 90 sources); fully random combinational netlists are the
    # honest worst case — nearly every cone source is unique there, so
    # interning buys nothing and the cold cost is all real compilation
    comb = load("rand_seq")
    cfaults, _ = collapse(comb)
    cbatches = [(random_patterns(comb.inputs, 16, seed=100 + b), 16)
                for b in range(2)]
    old_hits = _compiled.COMPILE_AFTER_HITS
    _compiled.COMPILE_AFTER_HITS = 0
    try:
        comb._program_cache.clear()
        start = time.perf_counter()
        fault_simulate_batched(comb, cfaults, cbatches,
                               drop_detected=False)
        t_cold = time.perf_counter() - start
        start = time.perf_counter()
        fault_simulate_batched(comb, cfaults, cbatches,
                               drop_detected=False)
        t_warm = time.perf_counter() - start
    finally:
        _compiled.COMPILE_AFTER_HITS = old_hits
    cache = comb._program_cache
    interned = cache.get("_interned", {})
    n_sites = sum(1 for key in cache
                  if isinstance(key, tuple) and key[0] in ("det", "cone"))
    return {
        "circuit": circuit.name,
        "n_cycles": n_cycles,
        "population": len(circuit.flops) * n_cycles,
        "grid": rows,
        "outcome_identical": identical,
        "vector_speedup_256": rows["w256_vector"]["speedup_vs_packed"],
        "vector_speedup_1024": rows["w1024_vector"]["speedup_vs_packed"],
        "interning": {
            "circuit": comb.name,
            "compiled_sites": n_sites,
            "unique_sources": len(interned),
            "sites_per_source": round(n_sites / len(interned), 2)
            if interned else 1.0,
            "cold_s": round(t_cold, 4),
            "warm_s": round(t_warm, 4),
            "cold_vs_warm": round(t_cold / t_warm, 2) if t_warm
            else float("inf"),
        },
    }


# ----------------------------------------------------------------------
# SoA core: level-batched kernel vs big-int backing on a wide circuit
# ----------------------------------------------------------------------
def _soa_core_measurement(n_cycles=24, probe_points=48):
    from repro.circuit.library import random_sequential
    from repro.engine import lanes as _lanes
    from repro.sim import compiled as _compiled
    from repro.sim import vector as _vector
    from repro.soft_error.seu import _golden_run, inject_seu

    if not _vector.HAVE_NUMPY:
        return {"skipped": "numpy not installed"}

    # wide levels are the SoA tier's home turf: ~85 gates per level
    # amortize the ~4 fused numpy calls each level costs.  The smoke
    # rand_seq (a handful of gates per level) would measure dispatch
    # overhead instead of the kernel
    circuit = random_sequential(n_inputs=80, n_gates=12800, n_flops=320,
                                seed=3)
    workload = random_workload(circuit, n_cycles, seed=7)
    points = [(flop, cyc) for cyc in range(n_cycles)
              for flop in circuit.flops]

    prog = _compiled.soa_step_program(circuit, 1024)
    stats = prog.stats

    # identity probe against the per-point injector (inject_seu is the
    # semantics oracle; running it over the full 7680-point population
    # would dwarf the bench, so a spread sample carries the gate — the
    # full-width identity below covers int vs SoA on every point)
    golden = _golden_run(circuit, workload)
    probe = points[::len(points) // probe_points][:probe_points]
    expected = [inject_seu(circuit, workload, flop, cyc, golden)
                for flop, cyc in probe]
    probe_ctx = _lanes.build_context(circuit, workload, len(probe),
                                     backing="soa")
    probe_identical = _lanes.seu_outcomes(probe_ctx, probe) == expected

    def timed(ctx, group):
        _lanes.seu_outcomes(ctx, group)  # warm
        best = None
        for _ in range(3):
            start = time.perf_counter()
            out = _lanes.seu_outcomes(ctx, group)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None or elapsed < best else best
        return best, out

    rows = {}
    identical = probe_identical
    for width in (256, 1024, 4096):
        group = points[:width]
        times, outcomes = {}, {}
        # the per-net ndarray row rides along as the honest baseline the
        # SoA tier replaces (it loses to int everywhere below ~32k lanes)
        for backing in ("int", "ndarray", "soa"):
            ctx = _lanes.build_context(circuit, workload, width,
                                       backing=backing)
            times[backing], outcomes[backing] = timed(ctx, group)
        same = (outcomes["int"] == outcomes["soa"]
                == outcomes["ndarray"])
        identical = identical and same
        rows[f"w{width}"] = {
            "int_s": round(times["int"], 4),
            "ndarray_s": round(times["ndarray"], 4),
            "soa_s": round(times["soa"], 4),
            "ndarray_speedup": round(times["int"] / times["ndarray"], 2)
            if times["ndarray"] else float("inf"),
            "soa_speedup": round(times["int"] / times["soa"], 2)
            if times["soa"] else float("inf"),
            "identical": same,
        }
    return {
        "circuit": circuit.name,
        "n_cycles": n_cycles,
        "population": len(points),
        "gates": stats.gates,
        "levels": stats.levels,
        "gates_per_level": round(stats.gates / stats.levels, 1),
        "fused_ops": stats.fused_ops,
        "scratch_kb_1024": stats.scratch_bytes // 1024,
        # the auto crossover in effect on this host (env/calibration
        # included) — the regression gate softens to a warning when it
        # sits above 1024, i.e. when this host measurably shouldn't run
        # SoA at that width
        "soa_min_lanes": _vector.SOA_MIN_LANES,
        "probe_identical_vs_inject_seu": probe_identical,
        "grid": rows,
        "outcome_identical": identical,
        "soa_speedup_256": rows["w256"]["soa_speedup"],
        "soa_speedup_1024": rows["w1024"]["soa_speedup"],
        "soa_speedup_4096": rows["w4096"]["soa_speedup"],
    }


# ----------------------------------------------------------------------
# pattern shipping: large PPSFP payloads park in the temp-file channel
# ----------------------------------------------------------------------
def _pattern_shipping_measurement(n_inputs=48, n_gates=600,
                                  batch_patterns=4096, n_batches=16,
                                  sample=400):
    import pickle

    from repro.engine import executors as _executors

    circuit = random_combinational(n_inputs=n_inputs, n_gates=n_gates,
                                   seed=9)
    faults, _ = collapse(circuit)
    batches = [(random_patterns(circuit.inputs, batch_patterns,
                                seed=200 + b), batch_patterns)
               for b in range(n_batches)]
    pattern_bytes = len(pickle.dumps(batches,
                                     protocol=pickle.HIGHEST_PROTOCOL))

    old_min = _executors.SHIP_BYTES_MIN
    _executors.SHIP_BYTES_MIN = 1 << 60  # shipping off: inline baseline
    try:
        inline_bytes = len(pickle.dumps(
            PpsfpBackend(circuit.copy(), faults, batches),
            protocol=pickle.HIGHEST_PROTOCOL))
    finally:
        _executors.SHIP_BYTES_MIN = old_min
    shipped_backend = PpsfpBackend(circuit.copy(), faults, batches)
    shipped_bytes = len(pickle.dumps(shipped_backend,
                                     protocol=pickle.HIGHEST_PROTOCOL))
    blob = shipped_backend._batches_blob

    rows = {}
    for executor in ("serial", "process"):
        report = run_campaign(
            PpsfpBackend(circuit.copy(), faults, batches),
            EngineConfig(batch_size=64, workers=2, executor=executor,
                         sample=sample, seed=3, reuse_pool=False))
        rows[executor] = [(i.location, i.cycle, i.outcome)
                          for i in report.injections]
    return {
        "circuit": circuit.name,
        "n_patterns": n_batches * batch_patterns,
        "pattern_bytes": pattern_bytes,
        "ship_threshold": old_min,
        "shipped": blob is not None,
        "blob_bytes": blob.nbytes if blob is not None else 0,
        "backend_inline_bytes": inline_bytes,
        "backend_shipped_bytes": shipped_bytes,
        "payload_shrink": round(inline_bytes / shipped_bytes, 2)
        if shipped_bytes else float("inf"),
        "outcome_identical": rows["serial"] == rows["process"],
    }


# ----------------------------------------------------------------------
# resilience: kill-and-resume identity, quarantine, retry overhead
# ----------------------------------------------------------------------
def _resilience_measurement(n_cycles=60, abort_after=5, rounds=3):
    circuit = load("rand_seq")
    workload = random_workload(circuit, n_cycles, seed=7)
    population = len(circuit.flops) * n_cycles

    def make_backend():
        return SeuBackend(circuit.copy(), workload, lane_width=1)

    config = EngineConfig(batch_size=24, executor="serial")

    def signature(report):
        return ([(i.location, i.cycle, i.outcome) for i in report.injections],
                report.outcomes, report.total, report.converged,
                report.confidence_interval("failure"))

    # kill-and-resume identity: abort mid-campaign from the accounting
    # path (the checkpoints for accounted chunks are already committed),
    # then resume on the same db and compare against an uninterrupted run
    ref_db = CampaignDb()
    reference = run_campaign(make_backend(), config, db=ref_db)
    ref_db.close()

    class _Abort(Exception):
        pass

    seen = {"n": 0, "campaign_id": None}

    def hook(report):
        seen["campaign_id"] = report.campaign_id
        seen["n"] += 1
        if seen["n"] >= abort_after:
            raise _Abort

    db = CampaignDb()
    try:
        run_campaign(make_backend(), config, db=db, on_chunk=hook)
    except _Abort:
        pass
    resumed = resume_campaign(make_backend(), seen["campaign_id"], config,
                              db=db)
    db.close()
    resume_identical = signature(resumed) == signature(reference)

    # quarantine: a chunk that fails every retry becomes a first-class
    # 'failed' stratum; the rest of the campaign completes untouched
    victim = make_backend()
    trigger = victim.enumerate_points()[30]  # chunk 1 of 24-point chunks
    chaos = ChaosBackend(victim, [ChaosFault(trigger, "raise", None)])
    qreport = run_campaign(
        chaos, EngineConfig(batch_size=24, executor="serial",
                            max_chunk_retries=1, retry_backoff_s=0.001))
    quarantine_ok = (
        len(qreport.quarantined) == 1
        and qreport.quarantined[0].n_points == 24
        and qreport.total == population - qreport.quarantined_points
        and "quarantined" in qreport.describe())

    # retry overhead: the armed machinery (bounded retries, timeout
    # accounting, per-chunk validation) against a config with retries
    # off, both on the identical no-fault serial campaign, min-of-3
    def timed(cfg):
        best = None
        for _ in range(rounds):
            start = time.perf_counter()
            run_campaign(make_backend(), cfg)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None or elapsed < best else best
        return best

    guarded_s = timed(EngineConfig(batch_size=24, executor="serial",
                                   max_chunk_retries=2, chunk_timeout=30.0))
    bare_s = timed(EngineConfig(batch_size=24, executor="serial",
                                max_chunk_retries=0))
    return {
        "circuit": circuit.name,
        "population": population,
        "abort_after_chunks": abort_after,
        "resume_identical": resume_identical,
        "resumed_chunks": resumed.resumed_chunks,
        "quarantine_ok": quarantine_ok,
        "quarantined_points": qreport.quarantined_points,
        "guarded_s": round(guarded_s, 4),
        "bare_s": round(bare_s, 4),
        "retry_overhead": round(guarded_s / bare_s, 3) if bare_s
        else float("inf"),
    }


# ----------------------------------------------------------------------
# campaign service: N-worker report identity under SIGKILL, lease cost
# ----------------------------------------------------------------------
def _service_resilience_measurement(n_cycles=60, rounds=3):
    import os
    import tempfile

    from repro.engine import HostChaos, HostFault, shutdown_pools
    from repro.service import CampaignQueue, CampaignWorker, \
        run_service_campaign

    # earlier sections leave persistent process pools (and their handler
    # threads) alive; on a small host they skew the single-worker timing
    # below, so start from a quiet machine
    shutdown_pools()

    circuit = load("rand_seq")
    workload = random_workload(circuit, n_cycles, seed=7)
    population = len(circuit.flops) * n_cycles

    def make_backend():
        return SeuBackend(circuit.copy(), workload, lane_width=1)

    # identity scenario: 24 chunks of 30, so the sabotaged worker gets to
    # its 2nd claim before its peers drain the lease table.  Overhead
    # measurement: a 2x-longer workload in 60-point chunks — the cadence
    # real campaigns run at, long enough that per-campaign constants
    # (submit, plan, report replay) amortize the way they do in practice.
    config = EngineConfig(batch_size=30, executor="serial")
    overhead_workload = random_workload(circuit, 2 * n_cycles, seed=7)
    overhead_config = EngineConfig(batch_size=60, executor="serial")

    def make_overhead_backend():
        return SeuBackend(circuit.copy(), overhead_workload, lane_width=1)

    def signature(report):
        return ([(i.location, i.cycle, i.outcome) for i in report.injections],
                report.outcomes, report.total, report.converged,
                report.confidence_interval("failure"))

    reference = run_campaign(make_backend(), config)
    overhead_reference = run_campaign(make_overhead_backend(),
                                      overhead_config)

    # identity under host chaos: 4 local worker processes, one SIGKILLed
    # the moment it claims its 2nd lease — its chunk must be reassigned
    # (deadline expiry) and the assembled report must stay byte-identical
    with tempfile.TemporaryDirectory(prefix="repro-bench-svc-") as tmp:
        db_path = os.path.join(tmp, "service.sqlite")
        report = run_service_campaign(
            make_backend(), config, db_path=db_path, n_workers=4,
            worker_kwargs={"lease_ttl": 1.0},
            per_worker={1: {"chaos": HostChaos(
                [HostFault("sigkill", after_chunks=2)])}},
            wait_timeout=300)
        with CampaignQueue(db_path) as queue:
            job = queue.poll(1)
            takeovers = queue.leases.takeover_total(job.campaign_id)
    report_identical = signature(report) == signature(reference)

    # lease/heartbeat cost: a clean single-worker service run (submit →
    # claim/execute/record per chunk → replay-assembled report) against
    # a direct engine run checkpointing to the same kind of file-backed
    # db.  Rounds are interleaved (direct, service, direct, ...) so slow
    # machine drift cancels out of the min-of-rounds ratio.
    def one_direct():
        with tempfile.TemporaryDirectory(prefix="repro-bench-db-") as t:
            db = CampaignDb(os.path.join(t, "direct.sqlite"))
            start = time.perf_counter()
            run_campaign(make_overhead_backend(), overhead_config, db=db)
            elapsed = time.perf_counter() - start
            db.close()
        return elapsed

    def one_service():
        with tempfile.TemporaryDirectory(prefix="repro-bench-svc-") as t:
            db_path = os.path.join(t, "svc.sqlite")
            # client connection opened outside the timed region, exactly
            # like the direct baseline's CampaignDb above
            with CampaignQueue(db_path) as queue:
                start = time.perf_counter()
                job_id = queue.submit(make_overhead_backend(),
                                      overhead_config)
                CampaignWorker(db_path, worker_id="bench",
                               lease_ttl=10.0).run()
                svc_report = queue.result(job_id)
                elapsed = time.perf_counter() - start
        assert signature(svc_report) == signature(overhead_reference)
        return elapsed

    direct_s = service_s = None
    for _ in range(rounds):
        elapsed = one_direct()
        direct_s = elapsed if direct_s is None else min(direct_s, elapsed)
        elapsed = one_service()
        service_s = elapsed if service_s is None else min(service_s, elapsed)
    return {
        "circuit": circuit.name,
        "population": population,
        "overhead_population": len(circuit.flops) * 2 * n_cycles,
        "n_workers": 4,
        "report_identical": report_identical,
        "takeovers": takeovers,
        "direct_s": round(direct_s, 4),
        "service_s": round(service_s, 4),
        "lease_overhead": round(service_s / direct_s, 3) if direct_s
        else float("inf"),
    }


def run_smoke():
    cpus = _host_cpus()
    seu = _seu_scaling()
    ppsfp_stat = _ppsfp_statistical_scaling()
    record = {
        "bench": "engine_smoke",
        "host_cpus": cpus,
        "scaling_meaningful": cpus >= 2,
        "ppsfp_fast_path": _ppsfp_measurement(),
        "eval_gate_dispatch": _eval_gate_measurement(),
        "executor_scaling": {
            "seu": seu,
            "ppsfp_statistical": ppsfp_stat,
            "rsn_diagnosis": _rsn_diagnosis_scaling(),
            "gpgpu_seu": _gpgpu_seu_scaling(),
        },
        "lane_packing": _lane_packing_measurement(),
        "persistent_pool": _persistent_pool_measurement(),
        "compiled_sim": _compiled_sim_measurement(),
        "pattern_shipping": _pattern_shipping_measurement(),
        "vector_core": _vector_core_measurement(),
        "soa_core": _soa_core_measurement(),
        "resilience": _resilience_measurement(),
        "service_resilience": _service_resilience_measurement(),
    }
    if cpus < 2:
        record["note"] = (
            "single-CPU host: process/thread rows measure overhead only; "
            "the >=2x process_x4 target applies to multicore hosts (CI)")
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")
    return record


def test_engine_smoke(benchmark):
    record = benchmark.pedantic(run_smoke, rounds=1, iterations=1)
    ppsfp = record["ppsfp_fast_path"]
    dispatch = record["eval_gate_dispatch"]
    scaling = record["executor_scaling"]

    rows = [("ppsfp baseline", f"{ppsfp['baseline_s']:.3f}s", "1.00x", ""),
            ("ppsfp cone cache + dropping", f"{ppsfp['fast_path_s']:.3f}s",
             f"{ppsfp['speedup']:.2f}x",
             "identical" if ppsfp["coverage_identical"] else "MISMATCH"),
            ("eval_gate if/elif chain", f"{dispatch['chain_s']:.3f}s",
             "1.00x", ""),
            ("eval_gate dispatch table", f"{dispatch['dispatch_s']:.3f}s",
             f"{dispatch['speedup']:.2f}x", "identical")]
    for workload, data in scaling.items():
        for key, row in data["grid"].items():
            rows.append((f"{workload} {key}", f"{row['elapsed_s']:.3f}s",
                         f"{row['injections_per_s']:.0f} inj/s",
                         f"{row['speedup_vs_serial']:.2f}x"))
    for workload, data in record["lane_packing"].items():
        if not isinstance(data, dict) or "grid" not in data:
            continue
        for key, row in data["grid"].items():
            rows.append((f"lanes {workload} {key}",
                         f"{row['elapsed_s']:.3f}s",
                         f"{row['injections_per_s']:.0f} inj/s",
                         f"{row['speedup_vs_per_point']:.2f}x"
                         + ("" if data["outcome_identical"]
                            else " MISMATCH")))
    pool = record["persistent_pool"]
    rows.append(("pool fresh-per-campaign", f"{pool['fresh_pools_s']:.3f}s",
                 f"{pool['n_campaigns']} campaigns", "1.00x"))
    rows.append(("pool reused", f"{pool['reused_pool_s']:.3f}s",
                 f"{pool['n_campaigns']} campaigns",
                 f"{pool['speedup']:.2f}x"
                 + ("" if pool["outcome_identical"] else " MISMATCH")))
    csim = record["compiled_sim"]
    rows.append(("ppsfp-dict interpreter",
                 f"{csim['ppsfp']['interpreted_s']:.3f}s", "1.00x", ""))
    rows.append(("ppsfp-dict compiled cold",
                 f"{csim['ppsfp']['compiled_cold_s']:.3f}s",
                 f"{csim['ppsfp']['cold_speedup']:.2f}x",
                 "identical" if csim["ppsfp"]["outcome_identical"]
                 else "MISMATCH"))
    rows.append(("ppsfp-dict compiled warm",
                 f"{csim['ppsfp']['compiled_warm_s']:.3f}s",
                 f"{csim['ppsfp']['warm_speedup']:.2f}x",
                 "identical" if csim["ppsfp"]["outcome_identical"]
                 else "MISMATCH"))
    rows.append(("seu packed interpreter",
                 f"{csim['seu']['interpreted_s']:.3f}s", "1.00x", ""))
    rows.append(("seu packed compiled",
                 f"{csim['seu']['compiled_s']:.3f}s",
                 f"{csim['seu']['speedup']:.2f}x",
                 "identical" if csim["seu"]["outcome_identical"]
                 else "MISMATCH"))
    vcore = record["vector_core"]
    for key, row in vcore["grid"].items():
        rows.append((f"vector {key} ({row['backing']})",
                     f"{row['elapsed_s']:.3f}s",
                     f"{row['injections_per_s']:.0f} inj/s",
                     f"{row['speedup_vs_packed']:.2f}x"
                     + ("" if row["identical_vs_per_point"]
                        else " MISMATCH")))
    soa = record["soa_core"]
    if "grid" in soa:
        for key, row in soa["grid"].items():
            rows.append((f"soa {key} int/ndarray/soa",
                         f"{row['int_s']:.3f}s / {row['ndarray_s']:.3f}s"
                         f" / {row['soa_s']:.3f}s",
                         f"{soa['gates_per_level']} gates/level, "
                         f"{soa['fused_ops']} fused ops",
                         f"{row['soa_speedup']:.2f}x"
                         + ("" if row["identical"] else " MISMATCH")))
    intern = vcore["interning"]
    rows.append(("det-source interning",
                 f"{intern['cold_s']:.3f}s cold",
                 f"{intern['compiled_sites']} sites / "
                 f"{intern['unique_sources']} sources",
                 f"{intern['cold_vs_warm']:.2f}x warm"))
    res = record["resilience"]
    rows.append(("resilience kill+resume",
                 f"{res['resumed_chunks']} chunks replayed",
                 f"{res['population']} inj",
                 "identical" if res["resume_identical"] else "MISMATCH"))
    rows.append(("resilience quarantine",
                 f"{res['quarantined_points']} points failed",
                 "campaign completed",
                 "ok" if res["quarantine_ok"] else "FAIL"))
    rows.append(("resilience retry overhead",
                 f"{res['guarded_s']:.3f}s armed",
                 f"{res['bare_s']:.3f}s bare",
                 f"{res['retry_overhead']:.3f}x"))
    svc = record["service_resilience"]
    rows.append(("service 4 workers + SIGKILL",
                 f"{svc['takeovers']} takeover(s)",
                 f"{svc['population']} inj",
                 "identical" if svc["report_identical"] else "MISMATCH"))
    rows.append(("service lease overhead",
                 f"{svc['service_s']:.3f}s service",
                 f"{svc['direct_s']:.3f}s direct",
                 f"{svc['lease_overhead']:.3f}x"))
    ship = record["pattern_shipping"]
    rows.append(("ppsfp payload inline",
                 f"{ship['backend_inline_bytes']} B",
                 f"{ship['pattern_bytes']} B patterns", ""))
    rows.append(("ppsfp payload shipped",
                 f"{ship['backend_shipped_bytes']} B",
                 f"{ship['payload_shrink']:.2f}x smaller",
                 "identical" if ship["outcome_identical"] else "MISMATCH"))
    print("\n" + format_table(
        ["path", "time", "speed", "scaling"], rows,
        title=f"Engine smoke — {record['host_cpus']} CPU(s)"))
    print(f"perf record written to {RECORD_PATH.name}")

    # gate thresholds live in one place: the CI regression checker
    from check_engine_regression import check

    assert check(record) == []
    # plus the structural invariant check() takes for granted
    for data in scaling.values():
        counts = {row["injections"] for row in data["grid"].values()}
        assert len(counts) == 1 and counts.pop() > 0


if __name__ == "__main__":
    print(json.dumps(run_smoke(), indent=2))
