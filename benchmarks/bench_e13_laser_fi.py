"""E13 — laser fault injection vs technology node ([18], III.F).

"Fault injections switching a single transistor at least in the 250nm
technology are successful and repeatable", enabling flips of "identified
registers that allow/prevent access to sensitive data".  Rows: per-node
single-bit success, collateral and miss rates for the unlock-register
attack, plus the DFA payload a single-bit capability enables.
"""

from repro.core import format_table
from repro.security import (
    dfa_with_redundancy_countermeasure,
    full_dfa_attack,
    unlock_register_attack,
)

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


def _experiment():
    rows = []
    for tech in ("250nm", "130nm", "65nm", "28nm"):
        stats = unlock_register_attack(tech, attempts=60, seed=5)
        rows.append((tech, f"{stats.single_bit_success_rate:.2f}",
                     f"{stats.collateral / stats.attempts:.2f}",
                     f"{stats.misses / stats.attempts:.2f}"))
    recovered = full_dfa_attack(KEY, seed=2)
    released_plain, released_protected = \
        dfa_with_redundancy_countermeasure(KEY, seed=3)
    return rows, recovered == KEY, (released_plain, released_protected)


def test_e13_laser_fi(benchmark):
    rows, dfa_success, (plain, protected) = benchmark.pedantic(
        _experiment, rounds=1, iterations=1)
    print("\n" + format_table(
        ["technology", "single-bit success", "multi-bit collateral", "miss"],
        rows, title="E13 — targeted unlock-register attack (60 shots)"))
    print(f"DFA payload with single-bit faults: master key recovered = "
          f"{dfa_success}")
    print(f"duplicate-and-compare countermeasure: faulty ciphertexts "
          f"released {plain} -> {protected}")

    # claim shape: repeatable single-bit flips at 250nm, collateral-
    # dominated at deep submicron; single-bit capability breaks AES;
    # redundancy blocks the exploit channel
    by_tech = {r[0]: float(r[1]) for r in rows}
    assert by_tech["250nm"] > 0.9
    assert by_tech["28nm"] < 0.1
    assert dfa_success
    assert protected == 0
