"""CI regression gate over BENCH_engine.json.

Reads the record written by ``bench_engine_smoke.py`` and fails (exit 1)
when the engine's perf claims regress:

* a ported workload's scaling sweep is missing from the record (every
  workload on the engine must keep its outcome-identity row);
* any executor cell produced non-identical campaign outcomes;
* the PPSFP fast path lost its >= 2x speedup or its losslessness;
* lane packing lost outcome identity at any width (unconditional), or
  the packed SEU path fell below 3x over per-point on the smoke
  workload (the headline target is >= 5x; 3x is the regression floor);
* the persistent worker pool changed campaign outcomes vs fresh pools;
* the compiled simulation core lost interpreter identity on any path
  (unconditional), or its warm PPSFP speedup fell below the 3x CI floor
  (the headline target is >= 5x), or the compiled packed-SEU path lost
  identity or fell below 2x;
* pattern shipping stopped engaging on an over-threshold payload,
  stopped shrinking the pickled backend, or changed campaign outcomes;
* the vector tier lost per-point identity at any lane width or backing
  (unconditional), or the 256-lane vector SEU campaign fell below 2x
  over the packed-64 compiled path (the headline target is >= 3x), or
  source interning stopped deduplicating det-program sources;
* the SoA kernel tier lost identity — between the int and SoA backings
  at any lane width, or against the per-point ``inject_seu`` probe —
  (unconditional), or fusion stopped working (fused numpy ops no longer
  a small fraction of the gate count), or SoA at 1024 lanes fell below
  the 2x-over-int floor (enforced when the host's crossover record says
  SoA should win there; a warning otherwise, mirroring the multicore
  scaling gate), or SoA at 4096 lanes dropped below parity with int;
* kill-and-resume no longer reproduces the uninterrupted campaign
  byte-for-byte (unconditional), a persistently-failing chunk stopped
  being quarantined cleanly, or the armed fault-tolerance machinery
  costs more than 5% on a no-fault run;
* the campaign service lost report identity — a 4-worker run with one
  worker SIGKILLed mid-campaign must reproduce the serial reference
  byte-for-byte (unconditional) — or the lease/heartbeat machinery
  costs more than 5% over a direct single-worker engine run;
* on a multicore host, the process executor at 4 workers is slower than
  serial on the SEU workload; on hosts with >= 4 CPUs the >= 2x
  speedup target is enforced outright (a record produced on such a
  host arms the gate automatically).  On a single-CPU host the
  comparison only measures spawn overhead, so it is reported but not
  enforced.

Usage: ``python benchmarks/check_engine_regression.py [record.json]``
"""

import json
import sys
from pathlib import Path

DEFAULT_RECORD = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: Workloads whose executor sweep (and outcome identity) CI insists on.
PORTED_WORKLOADS = ("seu", "ppsfp_statistical", "rsn_diagnosis",
                    "gpgpu_seu")


def check(record: dict) -> list[str]:
    failures: list[str] = []

    ppsfp = record["ppsfp_fast_path"]
    if not ppsfp["coverage_identical"]:
        failures.append("ppsfp fast path is no longer lossless")
    if ppsfp["speedup"] < 2.0:
        failures.append(
            f"ppsfp fast path speedup {ppsfp['speedup']}x fell below 2x")

    dispatch = record.get("eval_gate_dispatch")
    if dispatch and dispatch["speedup"] < 0.9:
        failures.append(
            f"eval_gate dispatch {dispatch['speedup']}x is a regression "
            "vs the if/elif chain")

    lanes = record.get("lane_packing")
    if lanes is None:
        failures.append("lane_packing rows missing from the bench record")
    else:
        for workload in ("seu", "slicing"):
            data = lanes.get(workload)
            if data is None:
                failures.append(f"lane_packing {workload} rows missing")
                continue
            if not data["outcome_identical"]:
                failures.append(
                    f"lane packing is no longer lossless on {workload}")
        seu_lanes = lanes.get("seu")
        if seu_lanes and seu_lanes["packed_speedup"] < 3.0:
            failures.append(
                f"packed SEU speedup {seu_lanes['packed_speedup']}x fell "
                "below the 3x floor (target >= 5x)")

    pool = record.get("persistent_pool")
    if pool is None:
        failures.append("persistent_pool rows missing from the bench record")
    elif not pool["outcome_identical"]:
        failures.append("persistent pool changed campaign outcomes")

    csim = record.get("compiled_sim")
    if csim is None:
        failures.append("compiled_sim rows missing from the bench record")
    else:
        for path in ("ppsfp", "seu"):
            data = csim.get(path)
            if data is None:
                failures.append(f"compiled_sim {path} rows missing")
            elif not data["outcome_identical"]:
                failures.append(
                    f"compiled {path} path is no longer interpreter-"
                    "identical")
        ppsfp_c = csim.get("ppsfp")
        if ppsfp_c and ppsfp_c["warm_speedup"] < 3.0:
            failures.append(
                f"compiled PPSFP warm speedup {ppsfp_c['warm_speedup']}x "
                "fell below the 3x floor (target >= 5x)")
        seu_c = csim.get("seu")
        if seu_c and seu_c["speedup"] < 2.0:
            failures.append(
                f"compiled packed-SEU speedup {seu_c['speedup']}x fell "
                "below the 2x floor (target >= 3x)")

    ship = record.get("pattern_shipping")
    if ship is None:
        failures.append("pattern_shipping rows missing from the bench record")
    else:
        if not ship["shipped"]:
            failures.append(
                "pattern payload above the threshold was not shipped")
        if not ship["outcome_identical"]:
            failures.append("pattern shipping changed campaign outcomes")
        if ship["backend_shipped_bytes"] >= ship["backend_inline_bytes"]:
            failures.append(
                "shipped backend payload is not smaller than inline")

    vcore = record.get("vector_core")
    if vcore is None:
        failures.append("vector_core rows missing from the bench record")
    else:
        for key, row in vcore["grid"].items():
            if not row["identical_vs_per_point"]:
                failures.append(
                    f"vector core {key} ({row['backing']}) is no longer "
                    "identical to the per-point reference")
        if vcore["vector_speedup_256"] < 2.0:
            failures.append(
                f"vector SEU at 256 lanes {vcore['vector_speedup_256']}x "
                "fell below the 2x-over-packed floor (target >= 3x)")
        intern = vcore["interning"]
        if intern["unique_sources"] >= intern["compiled_sites"]:
            failures.append(
                "source interning is no longer deduplicating det-program "
                f"sources ({intern['unique_sources']} sources for "
                f"{intern['compiled_sites']} sites)")

    soa = record.get("soa_core")
    if soa is None:
        failures.append("soa_core rows missing from the bench record")
    elif "skipped" not in soa:
        for key, row in soa["grid"].items():
            if not row["identical"]:
                failures.append(
                    f"soa core {key}: int and soa backings disagree on "
                    "outcomes")
        if not soa["probe_identical_vs_inject_seu"]:
            failures.append(
                "soa core no longer matches the per-point inject_seu probe")
        if soa["fused_ops"] * 4 > soa["gates"]:
            failures.append(
                f"soa fusion degraded: {soa['fused_ops']} numpy calls for "
                f"{soa['gates']} gates (floor: 4 gates per call)")
        if soa["soa_speedup_1024"] < 2.0:
            if soa.get("soa_min_lanes", 0) <= 1024:
                failures.append(
                    f"soa speedup at 1024 lanes {soa['soa_speedup_1024']}x "
                    "fell below the 2x-over-int floor (target >= 2x)")
            else:
                # this host's measured crossover says SoA shouldn't win at
                # 1024 lanes — report, don't enforce (mirrors the multicore
                # scaling gate on single-CPU hosts)
                print(f"warning: soa speedup at 1024 lanes "
                      f"{soa['soa_speedup_1024']}x below 2x, but host "
                      f"crossover is {soa['soa_min_lanes']} lanes")
        if soa["soa_speedup_4096"] < 1.0:
            failures.append(
                f"soa speedup at 4096 lanes {soa['soa_speedup_4096']}x "
                "regressed below parity with the int backing")

    res = record.get("resilience")
    if res is None:
        failures.append("resilience rows missing from the bench record")
    else:
        if not res["resume_identical"]:
            failures.append(
                "kill-and-resume no longer reproduces the uninterrupted "
                "campaign byte-for-byte")
        if not res["quarantine_ok"]:
            failures.append(
                "persistent chunk failure is no longer quarantined cleanly")
        if res["retry_overhead"] > 1.05:
            failures.append(
                f"armed fault-tolerance machinery costs "
                f"{res['retry_overhead']}x on a no-fault run "
                "(floor 1.05x)")

    svc = record.get("service_resilience")
    if svc is None:
        failures.append(
            "service_resilience rows missing from the bench record")
    else:
        if not svc["report_identical"]:
            failures.append(
                "campaign service (4 workers, one SIGKILLed) no longer "
                "reproduces the serial report byte-for-byte")
        if svc["takeovers"] < 1:
            failures.append(
                "service SIGKILL scenario saw no lease takeover — the "
                "dead worker's chunk was never reassigned")
        if svc["lease_overhead"] > 1.05:
            failures.append(
                f"service lease/heartbeat machinery costs "
                f"{svc['lease_overhead']}x over a direct single-worker "
                "run (floor 1.05x)")

    scaling = record["executor_scaling"]
    for workload in PORTED_WORKLOADS:
        if workload not in scaling:
            failures.append(
                f"{workload}: scaling sweep missing from the bench record")
    for workload, data in scaling.items():
        if not data["outcome_identical"]:
            failures.append(
                f"{workload}: executors disagreed on campaign outcomes")

    seu = scaling["seu"]
    process_x4 = seu["grid"]["process_x4"]["injections_per_s"]
    serial = seu["grid"]["serial_x1"]["injections_per_s"]
    cpus = record.get("host_cpus", 1)
    if cpus >= 2 and process_x4 < serial:
        failures.append(
            f"SEU process_x4 ({process_x4} inj/s) is slower than serial "
            f"({serial} inj/s) on a {cpus}-CPU host")
    if cpus >= 4 and seu["process_x4_speedup"] < 2.0:
        failures.append(
            f"SEU process_x4 speedup {seu['process_x4_speedup']}x is below "
            f"the 2x target on a {cpus}-CPU host")
    if cpus < 2:
        print(f"note: single-CPU host, skipping process-vs-serial gate "
              f"(process_x4 {process_x4} vs serial {serial} inj/s)")
    return failures


def main(argv: list[str]) -> int:
    path = Path(argv[1]) if len(argv) > 1 else DEFAULT_RECORD
    record = json.loads(path.read_text())
    failures = check(record)
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    seu = record["executor_scaling"]["seu"]
    lanes = record["lane_packing"]["seu"]
    csim = record["compiled_sim"]
    vcore = record["vector_core"]
    soa = record["soa_core"]
    soa_note = (f"soa x1024 {soa['soa_speedup_1024']}x"
                if "grid" in soa else "soa skipped")
    res = record["resilience"]
    svc = record["service_resilience"]
    print(f"engine perf gate OK (host_cpus={record.get('host_cpus')}, "
          f"seu process_x4 speedup {seu['process_x4_speedup']}x, "
          f"packed seu {lanes['packed_speedup']}x, "
          f"compiled ppsfp warm {csim['ppsfp']['warm_speedup']}x / "
          f"seu {csim['seu']['speedup']}x, "
          f"vector seu x256 {vcore['vector_speedup_256']}x / "
          f"x1024 {vcore['vector_speedup_1024']}x, "
          f"{soa_note}, "
          f"resume identical, retry overhead {res['retry_overhead']}x, "
          f"service identical with {svc['takeovers']} takeover(s), "
          f"lease overhead {svc['lease_overhead']}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
