"""E5 — ML prediction of derating factors ([31][55]-[58], III.B).

Graph/structural features of the netlist predict per-net logic derating
without fault-simulating every net: "fast and accurate fault, error and
failure metric extraction".  Rows compare ridge / MLP / GCN-lite against
the exact bit-parallel analysis, with the wall-clock speedup of
predicting vs simulating the held-out nets.
"""

import random
import time

import numpy as np

from repro.circuit import load
from repro.core import format_table
from repro.soft_error import (
    GcnRegressor,
    MlpRegressor,
    RegressionMetrics,
    RidgeRegressor,
    extract_features,
    logical_derating,
    split_indices,
    standardize,
)


def _experiment():
    circuit = load("rand500")
    nets = [g.output for g in circuit.topo_order()][:180]
    stim = {pi: random.Random(3).getrandbits(64) for pi in circuit.inputs}

    started = time.perf_counter()
    labels = np.array([logical_derating(circuit, n, stim, 64) for n in nets])
    sim_seconds = time.perf_counter() - started

    feats = extract_features(circuit, nets)
    tr, te = split_indices(len(nets), 0.7, seed=2)
    xtr, xte = standardize(feats[tr], feats[te])

    results = {}
    ridge = RidgeRegressor().fit(xtr, labels[tr])
    results["ridge"] = RegressionMetrics.of(labels[te], ridge.predict(xte))
    mlp = MlpRegressor(epochs=300, seed=0).fit(xtr, labels[tr])
    results["mlp"] = RegressionMetrics.of(labels[te], mlp.predict(xte))
    mu, sd = feats.mean(0), feats.std(0)
    sd[sd == 0] = 1
    fn = (feats - mu) / sd
    mask = np.zeros(len(nets), bool)
    mask[tr] = True
    gcn = GcnRegressor(epochs=400, lr=0.02).fit(circuit, nets, fn, labels, mask)
    results["gcn"] = RegressionMetrics.of(labels[te], gcn.predict(fn)[te])

    started = time.perf_counter()
    ridge.predict(xte)
    predict_seconds = time.perf_counter() - started
    per_net_sim = sim_seconds / len(nets)
    per_net_pred = max(predict_seconds / len(te), 1e-9)
    return results, per_net_sim / per_net_pred


def test_e5_ml_derating(benchmark):
    results, speedup = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    rows = [(name, f"{m.mse:.4f}", f"{m.mae:.4f}", f"{m.r2:.3f}")
            for name, m in results.items()]
    print("\n" + format_table(["model", "MSE", "MAE", "R^2"], rows,
                              title="E5 — derating prediction (held-out nets)"))
    print(f"prediction speedup vs exact fault analysis: ~{speedup:,.0f}x "
          f"per net")

    # claim shape: models beat the mean predictor; inference is orders of
    # magnitude cheaper than simulating
    assert any(m.r2 > 0.2 for m in results.values())
    assert all(m.mse < 0.15 for m in results.values())
    assert speedup > 100
