"""F1 — regenerate Fig. 1: distribution of research results by aspect.

Paper figure: bubbles over Reliability/Security/Quality, sized by result
count, tagged academia- vs industry-led.  Regenerated from the toolkit's
capability registry so it reflects what is actually implemented.
"""

from repro.core import default_registry, format_bars, format_table


def _build():
    registry = default_registry()
    return registry, registry.aspect_totals(), registry.lead_totals()


def test_fig1_distribution(benchmark):
    registry, aspects, leads = benchmark.pedantic(_build, rounds=1, iterations=1)

    print("\n" + format_table(
        ["tool/analysis", "aspects", "lead", "results"],
        registry.figure1_data(), title="Fig. 1 — research-result bubbles"))
    print("\n" + format_bars(sorted(aspects.items()), width=36,
                             title="results per aspect"))
    print(format_bars(sorted(leads.items()), width=36,
                      title="\nresults per lead"))

    # paper shape: reliability is the biggest cluster; both sectors lead
    # work; security is present but smaller in the first half-period
    assert aspects["reliability"] > aspects["quality"] > aspects["security"]
    assert leads["academia"] > 0 and leads["industry"] > 0
    assert len(registry.entries) >= 12
