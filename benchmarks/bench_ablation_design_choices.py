"""Ablation benches for the toolkit's own design choices (DESIGN.md §4).

Three internal decisions are measured rather than assumed:

* **fault collapsing** — how much fault-simulation work equivalence
  collapsing removes at identical coverage accounting;
* **compaction strategy** — greedy set-cover vs reverse-order: pattern
  counts and their relative costs;
* **random-then-deterministic ATPG** — the two-phase flow vs PODEM-only:
  total PODEM calls saved by the cheap random phase.
"""

from repro.atpg import (
    Podem,
    compact_greedy,
    compact_reverse,
    generate_tests,
    random_tpg,
)
from repro.circuit import load
from repro.core import format_table
from repro.faults import all_stuck_at, collapse
from repro.sim import fault_simulate, pack_patterns, random_patterns


def _collapsing_ablation():
    rows = []
    for name in ("c17", "rca8", "alu4", "mul4"):
        circuit = load(name)
        full = all_stuck_at(circuit)
        reps, _ = collapse(circuit)
        packed = random_patterns(circuit.inputs + list(circuit.flops), 64,
                                 seed=1)
        state = {q: packed[q] for q in circuit.flops}
        cov_full = fault_simulate(circuit, full, packed, 64,
                                  state=state).coverage
        cov_reps = fault_simulate(circuit, reps, packed, 64,
                                  state=state).coverage
        rows.append((name, len(full), len(reps),
                     f"{len(reps) / len(full):.2f}",
                     f"{abs(cov_full - cov_reps):.3f}"))
    return rows


def _compaction_ablation():
    circuit = load("rand200")
    faults, _ = collapse(circuit)
    rt = random_tpg(circuit, faults, max_patterns=192, seed=1)
    extra, _unt, _ab = generate_tests(circuit, rt.remaining)
    patterns = rt.patterns + extra
    greedy = compact_greedy(circuit, faults, patterns)
    reverse = compact_reverse(circuit, faults, patterns)

    def coverage(pats):
        packed = pack_patterns(pats)
        return fault_simulate(circuit, faults, packed, len(pats)).coverage

    return [
        ("uncompacted", len(patterns), f"{coverage(patterns):.3f}"),
        ("greedy set-cover", len(greedy), f"{coverage(greedy):.3f}"),
        ("reverse-order", len(reverse), f"{coverage(reverse):.3f}"),
    ]


def _two_phase_ablation():
    circuit = load("alu4")
    faults, _ = collapse(circuit)
    # PODEM-only: one engine call per fault
    podem_only_calls = len(faults)
    # two-phase: random knocks out the easy ones first
    rt = random_tpg(circuit, faults, max_patterns=128, seed=1)
    two_phase_calls = len(rt.remaining)
    engine = Podem(circuit)
    backtracks = sum(engine.run(f).backtracks for f in faults[:40])
    return podem_only_calls, two_phase_calls, backtracks


def test_ablation_design_choices(benchmark):
    collapsing, compaction, (podem_only, two_phase, backtracks) = \
        benchmark.pedantic(
            lambda: (_collapsing_ablation(), _compaction_ablation(),
                     _two_phase_ablation()),
            rounds=1, iterations=1)

    print("\n" + format_table(
        ["circuit", "full universe", "collapsed", "ratio", "|coverage diff|"],
        collapsing, title="ablation 1 — fault collapsing"))
    print("\n" + format_table(
        ["test set", "patterns", "coverage"],
        compaction, title="ablation 2 — compaction strategy"))
    print(f"\nablation 3 — two-phase ATPG: PODEM-only {podem_only} engine "
          f"calls vs {two_phase} after the random phase "
          f"({1 - two_phase / podem_only:.0%} saved); "
          f"{backtracks} total backtracks on a 40-fault sample")

    # collapsing must be loss-free for coverage accounting and save work
    assert all(float(row[4]) < 0.05 for row in collapsing)
    assert all(int(row[2]) < int(row[1]) for row in collapsing)
    # both compactors must preserve coverage and shrink the set
    base_cov = compaction[0][2]
    assert compaction[1][2] == base_cov and compaction[2][2] == base_cov
    assert compaction[1][1] <= compaction[0][1]
    # the random phase removes the bulk of deterministic work
    assert two_phase < podem_only / 2
