"""E10 — NBTI aging of IEEE 1687 networks ([36], III.E).

Idle scan segments hold static values for the whole mission and age
fastest; the shift path slows with its worst cell.  Rows: usage profile
vs shift-frequency loss at 10 years, with the dummy-cycle rebalancing
mitigation.
"""

from repro.core import format_table
from repro.rsn import age_network, mitigate_with_dummy_cycles, sib_tree


def _experiment():
    rows = []
    for profile_name, hot_fraction in (("mostly idle", 0.01),
                                       ("debug-heavy", 0.30)):
        network = sib_tree(depth=3, regs_per_leaf=1, reg_bits=8)
        usage = {name: hot_fraction for name in network.registry}
        usage["s1"] = 0.7  # one busy segment either way
        before, after = mitigate_with_dummy_cycles(network, usage,
                                                   dummy_fraction=0.10)
        rows.append((profile_name,
                     before.worst_cell[0],
                     f"{before.frequency_loss_percent():.1f}%",
                     f"{after.frequency_loss_percent():.1f}%"))
    return rows


def test_e10_rsn_aging(benchmark):
    rows = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    print("\n" + format_table(
        ["usage profile", "worst cell", "freq loss @10y",
         "with 10% dummy cycles"],
        rows, title="E10 — NBTI aging of the scan path"))

    # claim shape: idle networks age more; mitigation recovers frequency
    idle_loss = float(rows[0][2].rstrip("%"))
    busy_loss = float(rows[1][2].rstrip("%"))
    assert idle_loss >= busy_loss
    for row in rows:
        assert float(row[3].rstrip("%")) < float(row[2].rstrip("%"))
