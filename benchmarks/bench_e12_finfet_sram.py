"""E12 — FinFET SRAM defects: march tests vs current-sensor DFT
([10][26][27], III.E).

March tests catch hard (functional) defects but are blind to the
parametric hard-to-detect class; the on-chip current-sensor DFT closes
that gap "while using a limited number of operations only".
"""

from repro.core import format_table
from repro.memory import (
    ALGORITHMS,
    MARCH_C_MINUS,
    SramArray,
    combined_test,
    march_coverage,
    seed_defect_population,
)


def _experiment():
    algo_rows = []
    for name, algorithm in ALGORITHMS.items():
        array = SramArray.build(8, 16, seed=1)
        defects = seed_defect_population(array, n_hard=5, n_weak=8, seed=3)
        hard = [d.cell_name for d in defects if d.expected_class == "hard"]
        cov, _res = march_coverage(array, hard, algorithm)
        algo_rows.append((name, f"{algorithm.complexity}N", f"{cov:.2f}"))

    array = SramArray.build(8, 16, seed=1)
    defects = seed_defect_population(array, n_hard=5, n_weak=8, seed=3)
    hard = [d.cell_name for d in defects if d.expected_class == "hard"]
    weak = [d.cell_name for d in defects if d.expected_class == "weak"]
    report = combined_test(array, hard, weak, MARCH_C_MINUS)
    return algo_rows, report


def test_e12_finfet_sram(benchmark):
    algo_rows, report = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    print("\n" + format_table(["march algorithm", "complexity",
                               "hard-defect coverage"],
                              algo_rows, title="E12a — march algorithms"))
    print("\n" + format_table(
        ["defect class", "march", "march + current-sensor DFT"],
        [("hard (functional)", f"{report.march_coverage_hard:.2f}",
          f"{report.march_coverage_hard:.2f}"),
         ("weak (hard-to-detect)", f"{report.march_coverage_weak:.2f}",
          f"{report.combined_coverage_weak:.2f}")],
        title="E12b — closing the hard-to-detect gap"))
    print(f"operation cost: march {report.march_operations}, "
          f"DFT sweep {report.dft_operations}")

    # claim shape: march catches all hard, none of the weak; DFT closes
    # most of the weak gap at a fraction of the operations
    assert report.march_coverage_hard == 1.0
    assert report.march_coverage_weak == 0.0
    assert report.combined_coverage_weak >= 0.6
    assert report.dft_operations < report.march_operations
