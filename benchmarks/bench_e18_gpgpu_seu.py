"""E18 — SEU effects on GPGPU kernels and encoding styles ([25][40]).

[25] evaluates SEU outcomes on typical GPGPU applications; [40] shows
reliability and performance both depend on the software encoding of the
same computation — the branchy variant runs fewer issue slots while the
predicated variant spreads vulnerability differently.
"""

from repro.core import format_table
from repro.gpgpu import (
    encoding_style_study,
    reduction_kernel,
    seu_campaign_on_kernel,
    vector_add_kernel,
)


def _experiment():
    kernels = [("vector_add", vector_add_kernel()),
               ("reduction", reduction_kernel())]
    kernel_rows = []
    for name, kernel in kernels:
        rates = seu_campaign_on_kernel(kernel, n_injections=60, seed=2)
        kernel_rows.append((name, int(rates["issue_slots"]),
                            f"{rates['masked']:.2f}", f"{rates['sdc']:.2f}"))
    styles = encoding_style_study(n_injections=60, seed=1)
    return kernel_rows, styles


def test_e18_gpgpu_seu(benchmark):
    kernel_rows, styles = benchmark.pedantic(_experiment, rounds=1,
                                             iterations=1)
    print("\n" + format_table(
        ["kernel", "issue slots", "masked", "SDC"],
        kernel_rows, title="E18a — SEU outcomes per kernel"))
    style_rows = [(r.encoding, r.issue_slots, f"{r.sdc_rate:.2f}")
                  for r in styles]
    print("\n" + format_table(
        ["encoding", "issue slots (perf)", "SDC rate (reliability)"],
        style_rows, title="E18b — same computation, two encodings"))

    # claim shape: outcomes partition; the encodings differ in the
    # performance/vulnerability trade (different issue counts, and the
    # vulnerability is not identical between styles in general)
    for _name, _slots, masked, sdc in kernel_rows:
        assert abs(float(masked) + float(sdc) - 1.0) < 1e-9
    by_name = {r.encoding: r for r in styles}
    assert by_name["branchy"].issue_slots != by_name["predicated"].issue_slots
