"""E11 — software mitigation of address-decoder aging ([24][7], III.E).

"The idea is to embed additional instructions to the program to ensure a
balanced stress of different parts of the memory.  Our preliminary
results show that the address decoder can be mitigated very well."
Rows: software overhead vs recovered slowdown, plus the [7]-style
rejuvenation search.
"""

from repro.aging import (
    RejuvenationSearch,
    age_decoder,
    hot_cold_profile,
    mitigate_decoder,
    uniform_profile,
)
from repro.core import format_kv, format_table


def _experiment():
    profile = hot_cold_profile(3, hot_fraction=0.85, n_hot=1)
    baseline_hot = age_decoder(3, profile, years=10)
    baseline_uniform = age_decoder(3, uniform_profile(3), years=10)
    sweep = [(ov, mitigate_decoder(3, profile, overhead=ov, years=10))
             for ov in (0.1, 0.3, 0.5, 1.0)]
    search = RejuvenationSearch(3, profile, budget=8, seed=4)
    _seq, initial_fitness, best_fitness = search.run(iterations=20)
    return baseline_hot, baseline_uniform, sweep, (initial_fitness,
                                                   best_fitness)


def test_e11_decoder_aging(benchmark):
    hot, uniform, sweep, (search_init, search_best) = benchmark.pedantic(
        _experiment, rounds=1, iterations=1)

    rows = [(f"{ov:.0%}", f"{out.after.max_slowdown:.4f}",
             f"{out.slowdown_reduction:.0%}", f"{out.imbalance_reduction:.0%}")
            for ov, out in sweep]
    print("\n" + format_table(
        ["overhead", "worst wordline slowdown", "slowdown recovered",
         "imbalance recovered"],
        rows, title="E11 — decoder aging mitigation (10y, 85C)"))
    print(format_kv([
        ("hot-profile slowdown (no mitigation)", f"{hot.max_slowdown:.4f}"),
        ("uniform-profile slowdown", f"{uniform.max_slowdown:.4f}"),
        ("rejuvenation search fitness", f"{search_init:.4f} -> "
                                        f"{search_best:.4f}"),
    ]))

    # claim shape: skewed access ages worse than uniform; mitigation
    # recovers most of the aging at moderate overhead, monotonically
    assert hot.max_slowdown > uniform.max_slowdown
    reductions = [out.slowdown_reduction for _ov, out in sweep]
    assert all(b >= a - 1e-9 for a, b in zip(reductions, reductions[1:]))
    assert reductions[-1] > 0.6  # "mitigated very well"
    assert search_best <= search_init
