"""E14 — AI-based fault-attack detection (III.F).

"The neural network is trained with non-faulty traces only and hence has
the potential to not only detect existing fault attacks but also future
attacks."  The held-out attack class (``double_round``) plays the role
of the *future* attack: the detector never saw any attack during
training, so it detects the unseen class exactly like the known ones.
"""

import random

from repro.core import format_table
from repro.security import (
    FaultAttackDetector,
    clean_program_trace,
    evaluate_detector,
    faulted_trace,
)


def _experiment():
    rng = random.Random(7)
    train = [clean_program_trace(rng) for _ in range(120)]
    detector = FaultAttackDetector(epochs=250, seed=1).fit(train)

    clean_test = [clean_program_trace(rng) for _ in range(60)]
    attacks = {
        kind: [faulted_trace(clean_program_trace(rng), kind, rng)
               for _ in range(30)]
        for kind in ("skip", "loop_exit", "wrong_branch", "double_round")
    }
    report = evaluate_detector(detector, clean_test, attacks)
    return report


def test_e14_ai_detector(benchmark):
    report = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    rows = [(kind, f"{rate:.2f}",
             "unseen class" if kind == "double_round" else "")
            for kind, rate in sorted(report.detection_rate.items())]
    print("\n" + format_table(
        ["attack class", "detection rate", "note"], rows,
        title="E14 — autoencoder trained on clean traces only"))
    print(f"false-positive rate {report.false_positive_rate:.2f}, "
          f"AUC {report.auc:.3f}")

    # claim shape: low FPR, high detection on every class including the
    # one that stands in for 'future attacks'
    assert report.false_positive_rate < 0.1
    assert report.auc > 0.95
    assert all(rate > 0.8 for rate in report.detection_rate.values())
    assert report.detection_rate["double_round"] > 0.8
