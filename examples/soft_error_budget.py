#!/usr/bin/env python3
"""Soft-error FIT budgeting for an automotive SoC (Section III.B).

Walks the full derating chain — raw technology upset rates, masking
deratings measured by an actual SEU campaign, ECC protection — and
checks the result against the ISO 26262 ASIL-D 10-FIT budget.
"""

from repro.circuit import load
from repro.core import format_table
from repro.soft_error import (
    ComponentSER,
    FitBudget,
    headroom_bits,
    random_workload,
    run_campaign,
)


def main() -> None:
    # measure a real functional derating (AVF) on a circuit campaign
    circuit = load("rand_seq")
    workload = random_workload(circuit, 16, seed=3)
    campaign = run_campaign(circuit, workload)
    avf = campaign.failure_rate
    print(f"measured AVF on {circuit.name}: {avf:.2f} "
          f"({campaign.total} injections)")

    budget = FitBudget("ASIL-D")
    budget.add(ComponentSER("cpu_pipeline_flops", 4_096, "28nm",
                            functional_derating=avf))
    budget.add(ComponentSER("l1_cache_unprotected", 1 << 18, "28nm",
                            functional_derating=0.15))
    budget.add(ComponentSER("peripheral_regs", 2_048, "28nm",
                            functional_derating=0.05))
    print(format_table(
        ["component", "bits", "raw FIT", "logic", "timing", "AVF", "prot",
         "eff FIT"],
        budget.rows(), title="\nFIT budget (unprotected L1)"))
    print(f"total {budget.total_effective_fit:.2f} FIT vs "
          f"{budget.target_fit} FIT target -> "
          f"{'PASS' if budget.meets_target else 'FAIL'}")

    # the fix: ECC on the cache
    budget.components[1] = ComponentSER(
        "l1_cache_ecc", 1 << 18, "28nm", functional_derating=0.15,
        protected=True)
    print(f"with SEC-DED on L1: {budget.total_effective_fit:.2f} FIT -> "
          f"{'PASS' if budget.meets_target else 'FAIL'}")

    print(f"\nunprotected-bit headroom inside ASIL-D @28nm: "
          f"{headroom_bits('ASIL-D', '28nm'):,} bits "
          f"(a modern SoC holds orders of magnitude more state)")


if __name__ == "__main__":
    main()
