#!/usr/bin/env python3
"""Quickstart: the quality flow on one circuit in ~40 lines.

Builds a benchmark circuit, generates tests (random + deterministic
PODEM), compacts them, identifies untestable faults and reports the
corrected fault coverage — the Section III.A workflow end to end.
"""

from repro.atpg import compact_greedy, generate_tests, random_tpg
from repro.circuit import load
from repro.core import format_kv
from repro.faults import collapse
from repro.sim import fault_simulate, pack_patterns


def main() -> None:
    circuit = load("alu4")
    faults, classes = collapse(circuit)
    print(f"circuit {circuit.name}: {circuit.stats()['gates']} gates, "
          f"{len(faults)} collapsed faults "
          f"(from {sum(len(v) for v in classes.values())})")

    # phase 1: cheap random patterns
    rt = random_tpg(circuit, faults, max_patterns=256, seed=1)
    print(f"random TPG: coverage {rt.coverage:.3f} with "
          f"{len(rt.patterns)} kept patterns")

    # phase 2: PODEM for the random-resistant remainder
    extra, untestable, aborted = generate_tests(circuit, rt.remaining)
    patterns = rt.patterns + extra

    # phase 3: compaction
    compact = compact_greedy(circuit, faults, patterns)
    packed = pack_patterns(compact)
    sim = fault_simulate(circuit, faults, packed, len(compact))

    effective_denominator = len(faults) - len(untestable)
    effective = len(sim.detected) / effective_denominator
    print(format_kv([
        ("patterns after compaction", len(compact)),
        ("proven untestable", len(untestable)),
        ("aborted", len(aborted)),
        ("raw coverage", f"{sim.coverage:.3f}"),
        ("effective coverage", f"{effective:.3f}"),
    ], title="\nfinal test set"))


if __name__ == "__main__":
    main()
