#!/usr/bin/env python3
"""PASCAL-style side-channel audit of crypto implementations (III.F, [34]).

Audits four implementations for timing leakage, then demonstrates what
an attacker does with a leak: CPA key recovery from power traces of the
leaky AES, silence against the masked constant-time variant.  Trace
acquisition runs as unified-engine campaigns (``executor="auto"``), and
the engine's campaign reports are printed alongside the attack results.
"""

from repro.core import CampaignDb, format_table
from repro.crypto import (
    AesConstantTime,
    AesLeaky,
    montgomery_ladder,
    square_and_multiply,
)
from repro.security import (
    audit_timing,
    recover_key,
    trace_campaign,
    tvla_campaign,
)

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


def main() -> None:
    leaky, const = AesLeaky(KEY), AesConstantTime(KEY)
    audits = [
        audit_timing("modexp square&multiply",
                     lambda s, d: square_and_multiply(d or 3, s, 65537).cycles),
        audit_timing("modexp Montgomery ladder",
                     lambda s, d: montgomery_ladder(d or 3, s, 65537).cycles),
        audit_timing("AES table (cache model)",
                     lambda s, d: leaky.encrypt(
                         s.to_bytes(16, "little"))[1].cycles,
                     secret_bits=128),
        audit_timing("AES constant-time",
                     lambda s, d: const.encrypt(
                         s.to_bytes(16, "little"))[1].cycles,
                     secret_bits=128),
    ]
    rows = [(a.name, a.verdict, f"{a.t_statistic:.1f}",
             f"{a.hw_correlation:.2f}", "; ".join(a.leak_details) or "-")
            for a in audits]
    print(format_table(["implementation", "verdict", "|t|", "HW corr",
                        "details"], rows, title="timing audit"))

    print("\npower side channel — engine trace campaigns (TVLA then CPA):")
    db = CampaignDb()
    for name, cipher_factory in (("leaky", lambda: AesLeaky(KEY)),
                                 ("constant-time", lambda: AesConstantTime(KEY))):
        leak, tvla_report = tvla_campaign(cipher_factory(), 100, seed=5,
                                          db=db, executor="auto")
        traces, cpa_report = trace_campaign(cipher_factory(), 50, seed=4,
                                            db=db, executor="auto")
        recovered = recover_key(traces)
        correct = sum(1 for a, b in zip(recovered, KEY) if a == b)
        print(f"  {name:14s} TVLA max|t|={leak.max_t:5.1f} "
              f"leaks={leak.leaks!s:5s}  CPA @50 traces: {correct}/16 bytes")
        print(f"    {tvla_report.describe()}")
        print(f"    {cpa_report.describe()}")
    print(f"  campaign DB outcomes: {db.cross_campaign_outcomes()}")
    db.close()


if __name__ == "__main__":
    main()
