#!/usr/bin/env python3
"""PASCAL-style side-channel audit of crypto implementations (III.F, [34]).

Audits four implementations for timing leakage, then demonstrates what
an attacker does with a leak: CPA key recovery from power traces of the
leaky AES, silence against the masked constant-time variant.
"""

from repro.core import format_table
from repro.crypto import (
    AesConstantTime,
    AesLeaky,
    montgomery_ladder,
    square_and_multiply,
)
from repro.security import audit_timing, success_rate_curve, tvla

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


def main() -> None:
    leaky, const = AesLeaky(KEY), AesConstantTime(KEY)
    audits = [
        audit_timing("modexp square&multiply",
                     lambda s, d: square_and_multiply(d or 3, s, 65537).cycles),
        audit_timing("modexp Montgomery ladder",
                     lambda s, d: montgomery_ladder(d or 3, s, 65537).cycles),
        audit_timing("AES table (cache model)",
                     lambda s, d: leaky.encrypt(
                         s.to_bytes(16, "little"))[1].cycles,
                     secret_bits=128),
        audit_timing("AES constant-time",
                     lambda s, d: const.encrypt(
                         s.to_bytes(16, "little"))[1].cycles,
                     secret_bits=128),
    ]
    rows = [(a.name, a.verdict, f"{a.t_statistic:.1f}",
             f"{a.hw_correlation:.2f}", "; ".join(a.leak_details) or "-")
            for a in audits]
    print(format_table(["implementation", "verdict", "|t|", "HW corr",
                        "details"], rows, title="timing audit"))

    print("\npower side channel (TVLA then CPA):")
    for name, cipher_factory in (("leaky", lambda: AesLeaky(KEY)),
                                 ("constant-time", lambda: AesConstantTime(KEY))):
        leak = tvla(cipher_factory(), 100, seed=5)
        curve = success_rate_curve(cipher_factory, KEY, [10, 25, 50], seed=4)
        curve_str = ", ".join(f"{n}tr:{rate:.2f}" for n, rate in curve)
        print(f"  {name:14s} TVLA max|t|={leak.max_t:5.1f} "
              f"leaks={leak.leaks!s:5s}  CPA key bytes: {curve_str}")


if __name__ == "__main__":
    main()
