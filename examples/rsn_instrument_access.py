#!/usr/bin/env python3
"""IEEE 1687 instrument access, test and aging (Section III.E).

Builds a SIB-tree scan network, retargets instrument writes, compares
test-generation strategies (each coverage run is a unified-engine
signature campaign with ``executor="auto"``), runs the diagnosis
campaign with its report printed, and quantifies NBTI aging of the
rarely-used segments with and without the dummy-cycle mitigation.
"""

from functools import partial

from repro.core import format_kv, format_table
from repro.rsn import (
    all_rsn_faults,
    compact_test,
    compare_strategies,
    mitigate_with_dummy_cycles,
    naive_access_cost,
    retarget,
    sib_tree,
    signature_campaign,
)


def main() -> None:
    # partial (not a lambda) so the engine's process executor could ship
    # the factory to workers; "auto" still picks the right strategy here
    factory = partial(sib_tree, depth=3, regs_per_leaf=1, reg_bits=8)

    # --- retargeting: optimized vs flatten-everything
    network = factory()
    network.reset()
    result = retarget(network, {"r5": 0xA5, "r2": 0x3C})
    naive = naive_access_cost(factory(), {"r5": 0xA5, "r2": 0x3C})
    print(format_kv([
        ("network", f"{len(network.registry)} nodes"),
        ("targets written", result.satisfied),
        ("optimized access", f"{result.shift_cycles} shift cycles "
                             f"({result.csu_count} CSUs)"),
        ("naive flatten access", f"{naive} shift cycles"),
        ("saving", f"{1 - result.shift_cycles / naive:.0%}"),
    ], title="instrument access (retargeting)"))

    # --- test strategies (engine-backed signature campaigns)
    faults = all_rsn_faults(factory())
    comparison = compare_strategies(factory, faults, executor="auto")
    print(format_table(
        ["strategy", "shift cycles", "fault coverage"],
        [("exhaustive (per-SIB)", comparison.exhaustive_cycles,
          f"{comparison.exhaustive_coverage:.2f}"),
         ("compact (per-level)", comparison.compact_cycles,
          f"{comparison.compact_coverage:.2f}")],
        title=f"\nRSN test over {len(faults)} faults "
              f"(duration cut {comparison.duration_reduction:.0%})"))

    # --- diagnosis signature campaign, with the engine's report
    table, report = signature_campaign(factory, faults,
                                       compact_test(factory),
                                       executor="auto")
    print(format_kv([
        ("diagnosis resolution", f"{table.resolution():.2f}"),
        ("detected fraction", f"{table.detected_fraction():.2f}"),
        ("engine report", report.describe()),
    ], title="\nRSN diagnosis on the campaign engine"))

    # --- NBTI aging of idle segments
    network = factory()
    usage = {name: 0.02 for name in network.registry}
    usage["s1"] = 0.60  # one frequently-used debug segment
    before, after = mitigate_with_dummy_cycles(network, usage,
                                               dummy_fraction=0.10)
    print(format_kv([
        ("worst aged cell", before.worst_cell[0]),
        ("shift-clock loss after 10y", f"{before.frequency_loss_percent():.1f}%"),
        ("with 10% dummy cycles", f"{after.frequency_loss_percent():.1f}%"),
    ], title="\nNBTI aging of the scan path"))


if __name__ == "__main__":
    main()
