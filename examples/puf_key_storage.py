#!/usr/bin/env python3
"""PUF-based key storage without non-volatile memory (Section III.F).

Enrolls a FinFET SRAM PUF into a fuzzy extractor, then reconstructs the
key across the automotive temperature range, comparing the measured
behaviour against the closed-form analytical model.
"""

from repro.core import format_table
from repro.puf import (
    FINFET_16NM,
    PLANAR_28NM,
    FuzzyExtractor,
    FuzzyExtractorConfig,
    SramPuf,
    intra_device_hd,
    key_failure_rate,
    predicted_intra_hd,
)


def main() -> None:
    extractor = FuzzyExtractor(FuzzyExtractorConfig(key_nibbles=32,
                                                    repetition=5))
    puf = SramPuf(extractor.config.response_bits, FINFET_16NM, device_seed=42)
    key, helper = extractor.enroll(puf.reference_response(), secret_seed=7)
    print(f"enrolled a {len(key) * 8}-bit key from "
          f"{extractor.config.response_bits} PUF bits "
          f"(helper data is public)")

    rows = []
    for temp in (-40.0, 25.0, 85.0, 105.0):
        measured = intra_device_hd(puf, n_readouts=8, temp_c=temp)
        predicted = predicted_intra_hd(FINFET_16NM, temp)
        failures = key_failure_rate(puf, helper, key, extractor,
                                    n_trials=25, temp_c=temp)
        rows.append((f"{temp:+.0f} C", f"{measured:.4f}", f"{predicted:.4f}",
                     f"{failures:.2f}"))
    print(format_table(
        ["temperature", "intra-HD (sim)", "intra-HD (model)", "key failure"],
        rows, title="\nreliability across temperature"))

    finfet = predicted_intra_hd(FINFET_16NM, 85.0)
    planar = predicted_intra_hd(PLANAR_28NM, 85.0)
    print(f"\nFinFET vs planar BER @85C: {finfet:.4f} vs {planar:.4f} "
          f"({planar / finfet:.1f}x better)")


if __name__ == "__main__":
    main()
