#!/usr/bin/env python3
"""AutoSoC safety-configuration comparison (Section IV.B).

Runs the cruise-control application under fault injection in all four
SoC configurations and prints the outcome distribution — the experiment
the AutoSoC benchmark suite exists to make comparable across research
groups.
"""

from repro.autosoc import (
    APPLICATIONS,
    SocConfig,
    compare_configurations,
)
from repro.autosoc.fi import (
    CORRECTED_ECC,
    DETECTED_ECC,
    DETECTED_LOCKSTEP,
    HANG,
    MASKED,
    SDC,
)
from repro.core import format_table


def main() -> None:
    app = APPLICATIONS["cruise_control"]
    configs = [SocConfig.QM, SocConfig.LOCKSTEP, SocConfig.ECC, SocConfig.FULL]
    results = compare_configurations(app, configs, n_cpu=30, n_ram=15, seed=11)

    rows = []
    for config in configs:
        res = results[config]
        rows.append((
            config.value,
            f"{res.rate(MASKED):.2f}",
            f"{res.rate(SDC):.2f}",
            f"{res.rate(DETECTED_LOCKSTEP):.2f}",
            f"{res.rate(CORRECTED_ECC) + res.rate(DETECTED_ECC):.2f}",
            f"{res.rate(HANG):.2f}",
            f"{res.mean_detection_latency:.1f}",
        ))
    print(format_table(
        ["config", "masked", "SDC", "lockstep", "ecc", "hang",
         "det latency (cyc)"],
        rows, title=f"fault injection on '{app.name}' "
                    f"({results[configs[0]].total} injections/config)"))

    qm, full = results[SocConfig.QM], results[SocConfig.FULL]
    print(f"\ndangerous-outcome rate: QM {qm.dangerous_rate:.2f} -> "
          f"FULL {full.dangerous_rate:.2f}")


if __name__ == "__main__":
    main()
